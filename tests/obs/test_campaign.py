"""Campaign feed + monitor + forensics unit tests (repro.obs.campaign).

Covers the journaling discipline (fsynced shards, torn tails, concurrent
and multi-host writers), the duplicate-free status reduction, the robust
MAD anomaly detector, failure triage with repro hints, and the CLI.
"""

import json
import os

import pytest

from repro.obs.campaign import (
    CampaignFeed,
    campaign_status,
    detect_anomalies,
    host_fingerprint,
    load_feed,
    mad_outliers,
    main,
    reduce_trials,
    render_report,
    render_status,
    repro_hint,
    triage_failures,
)


# ------------------------------------------------------------- fingerprint


def test_host_fingerprint_is_stable_and_hostname_free():
    a, b = host_fingerprint(), host_fingerprint()
    assert a["id"] == b["id"] and len(a["id"]) == 12
    assert "hostname" not in a  # containers on one box are one perf host
    for field in ("cpu_model", "cpu_count", "python", "machine"):
        assert field in a


# -------------------------------------------------------------------- feed


def test_feed_roundtrip_sorted_by_time_and_seq(tmp_path):
    feed = CampaignFeed(tmp_path)
    feed.emit("sweep-start", None, trials=2)
    feed.emit_trial("launched", "k1", "exp", {"seed": 0})
    feed.emit_trial("completed", "k1", "exp", {"seed": 0},
                    summary={"wall_s": 0.5, "metrics": {}, "violations": 0})
    records = load_feed(tmp_path)
    assert [r["event"] for r in records] == ["sweep-start", "launched", "completed"]
    assert records[2]["wall_s"] == 0.5
    assert records[1]["host"] == host_fingerprint()["id"]
    assert [r["seq"] for r in records] == [0, 1, 2]


def test_feed_tolerates_torn_tail_and_junk(tmp_path):
    feed = CampaignFeed(tmp_path)
    feed.emit_trial("completed", "k1", "exp", {})
    with open(feed.path, "a", encoding="utf-8") as fh:
        fh.write("\n")                                   # blank line
        fh.write(json.dumps([1, 2, 3]) + "\n")           # valid JSON, not a record
        fh.write('{"t": 99, "event": "completed", "k')   # SIGKILL mid-write
    records = load_feed(tmp_path)
    assert len(records) == 1 and records[0]["key"] == "k1"


def test_two_concurrent_writers_never_share_a_shard(tmp_path, monkeypatch):
    first = CampaignFeed(tmp_path)
    monkeypatch.setattr(os, "getpid", lambda: os.getppid() + 77777)
    second = CampaignFeed(tmp_path)  # another worker process, same dir
    assert first.path != second.path
    first.emit_trial("completed", "k1", "exp", {})
    second.emit_trial("completed", "k2", "exp", {})
    first.emit_trial("completed", "k3", "exp", {})
    records = load_feed(tmp_path)
    assert {r["key"] for r in records} == {"k1", "k2", "k3"}
    assert len(list(tmp_path.glob("feed-*.jsonl"))) == 2


def test_multi_directory_shard_merge(tmp_path):
    host_a, host_b = tmp_path / "hostA", tmp_path / "hostB"
    CampaignFeed(host_a).emit_trial("completed", "k1", "exp", {})
    CampaignFeed(host_b).emit_trial("completed", "k2", "exp", {})
    merged = load_feed([host_a, host_b])
    assert {r["key"] for r in merged} == {"k1", "k2"}
    assert campaign_status(merged).completed == 2


# ------------------------------------------------------------------ status


def _rec(event, key, t, **fields):
    return {"t": t, "seq": int(t * 10), "event": event, "key": key,
            "experiment": fields.pop("experiment", "exp"), **fields}


def test_reduce_trials_latest_terminal_wins():
    records = [
        _rec("launched", "k1", 1.0),
        _rec("completed", "k1", 2.0, wall_s=1.0),
        # the resumed run replays the same trial from its journal:
        _rec("cached", "k1", 3.0, wall_s=1.0, source="journal"),
    ]
    slots = reduce_trials(records)
    assert len(slots) == 1 and slots["k1"]["state"] == "cached"
    status = campaign_status(records)
    assert status.done == 1 and status.completed == 0 and status.cached == 1


def test_campaign_status_counts_and_eta():
    records = [
        {"t": 0.0, "seq": 0, "event": "sweep-start", "key": None, "trials": 6},
        _rec("launched", "k1", 1.0),
        _rec("completed", "k1", 2.0, wall_s=1.0),
        _rec("launched", "k2", 2.0),
        _rec("completed", "k2", 4.0, wall_s=2.0),
        _rec("launched", "k3", 4.0),
        _rec("retry", "k3", 5.0, error="boom"),
        _rec("launched", "k4", 5.0),
        _rec("failed", "k4", 6.0, error="boom", attempts=2),
        _rec("launched", "k5", 6.0),
    ]
    status = campaign_status(records)
    assert status.declared == 6
    assert status.completed == 2 and status.failed == 1
    assert status.retrying == 1 and status.running == 1 and status.pending == 1
    assert status.retries == 1
    assert status.wall_p50_s is not None
    assert status.throughput_per_s is not None and status.eta_s is not None
    assert not status.sweep_ended
    text = render_status(status)
    assert "3/6 trials" in text and "retrying 1" in text


def test_per_experiment_rollup_flags_sick_families():
    records = [
        _rec("completed", "k1", 1.0, experiment="healthy", wall_s=1.0),
        _rec("failed", "k2", 2.0, experiment="sick", error="x", attempts=1),
    ]
    status = campaign_status(records)
    assert status.by_experiment["sick"]["failed"] == 1
    text = render_status(status)
    assert "SICK" in text and "ok" in text


# --------------------------------------------------------------- anomalies


def test_mad_outliers_flags_the_spike():
    values = [1.0, 1.1, 0.9, 1.05, 0.95, 1.0, 8.0]
    flagged = mad_outliers(values)
    assert [idx for idx, _ in flagged] == [6]
    assert flagged[0][1] > 3.5


def test_mad_outliers_constant_series_flags_nothing():
    assert mad_outliers([2.0] * 10) == []


def test_mad_outliers_short_series_flags_nothing():
    assert mad_outliers([1.0, 100.0]) == []
    assert mad_outliers([1.0, 1.0, 1.0, 100.0], min_n=5) == []


def test_mad_outliers_zero_mad_falls_back_to_mean_abs_dev():
    # Median spread is zero (majority identical) but the spike is real.
    values = [1.0] * 7 + [50.0]
    flagged = mad_outliers(values)
    assert [idx for idx, _ in flagged] == [7]


def test_detect_anomalies_groups_per_experiment():
    # Each family is internally tight; mixing them would mis-flag every
    # "slow" trial of the second family.
    records = [
        _rec("completed", f"a{i}", float(i), experiment="fast", wall_s=1.0 + i / 100)
        for i in range(6)
    ] + [
        _rec("completed", f"b{i}", 10.0 + i, experiment="slow", wall_s=50.0 + i / 100)
        for i in range(6)
    ]
    assert detect_anomalies(records) == []
    records.append(
        _rec("completed", "a9", 20.0, experiment="fast",
             kwargs={"seed": 9}, wall_s=30.0)
    )
    findings = detect_anomalies(records)
    assert len(findings) == 1
    finding = findings[0]
    assert finding["key"] == "a9" and finding["metric"] == "wall_s"
    assert "run_trial(Trial('fast'" in finding["hint"]
    assert "seed=9" in finding["hint"]


def test_detect_anomalies_scans_metric_snapshots():
    records = [
        _rec("completed", f"k{i}", float(i), wall_s=1.0,
             metrics={"mac.energy_j": 0.5 + i / 1000})
        for i in range(6)
    ]
    records.append(
        _rec("completed", "hot", 9.0, wall_s=1.0, metrics={"mac.energy_j": 40.0})
    )
    findings = detect_anomalies(records)
    assert any(f["key"] == "hot" and f["metric"] == "mac.energy_j" for f in findings)


# ------------------------------------------------------------------ triage


def test_triage_failures_and_violations_with_hints():
    records = [
        _rec("failed", "k1", 1.0, kwargs={"seed": 3}, error="RuntimeError: boom",
             attempts=3, timed_out=False),
        _rec("completed", "k2", 2.0, kwargs={"seed": 4}, violations=2),
        _rec("completed", "k3", 3.0, violations=0),
    ]
    triaged = triage_failures(records)
    assert {t["kind"] for t in triaged} == {"failure", "invariant-violation"}
    failure = next(t for t in triaged if t["kind"] == "failure")
    assert failure["attempts"] == 3 and "boom" in failure["error"]
    assert "seed=3" in failure["hint"] and "cache key k1" in failure["hint"]
    violated = next(t for t in triaged if t["kind"] == "invariant-violation")
    assert violated["violations"] == 2


def test_triage_trial_healed_by_resume_is_not_sick():
    records = [
        _rec("failed", "k1", 1.0, error="x", attempts=1),
        _rec("completed", "k1", 2.0, wall_s=1.0),  # the resumed run fixed it
    ]
    assert triage_failures(records) == []


def test_repro_hint_shape():
    hint = repro_hint("fig7c", {"sizes": [8], "seed": 5}, "a" * 64)
    assert hint.startswith("run_trial(Trial('fig7c'")
    assert "seed=5" in hint and "cache key " + "a" * 12 in hint


def test_render_report_sections():
    records = [
        _rec("completed", f"k{i}", float(i), wall_s=1.0) for i in range(6)
    ]
    report = render_report(records)
    assert "no metric anomalies" in report and "health: clean" in report
    records.append(_rec("failed", "bad", 9.0, error="boom", attempts=2))
    report = render_report(records)
    assert "triage (1 sick trial(s))" in report and "repro:" in report


# --------------------------------------------------------------------- CLI


def test_cli_status_and_report(tmp_path, capsys):
    feed = CampaignFeed(tmp_path)
    feed.emit("sweep-start", None, trials=1)
    feed.emit_trial("launched", "k1", "exp", {"seed": 0})
    feed.emit_trial("completed", "k1", "exp", {"seed": 0},
                    summary={"wall_s": 0.25, "metrics": {}, "violations": 0})
    feed.emit("sweep-end", None, trials=1, failures=0)
    assert main([str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "1/1 trials" in out and "[sweep ended]" in out
    assert main([str(tmp_path), "--report"]) == 0
    assert "health: clean" in capsys.readouterr().out


def test_cli_json_dump(tmp_path, capsys):
    CampaignFeed(tmp_path).emit_trial("completed", "k1", "exp", {})
    assert main([str(tmp_path), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["status"]["completed"] == 1
    assert payload["triage"] == [] and payload["anomalies"] == []


def test_cli_missing_and_empty_directories(tmp_path, capsys):
    assert main([str(tmp_path / "nope")]) == 2
    empty = tmp_path / "empty"
    empty.mkdir()
    assert main([str(empty)]) == 1


def test_cli_merges_multiple_directories(tmp_path, capsys):
    host_a, host_b = tmp_path / "a", tmp_path / "b"
    CampaignFeed(host_a).emit_trial("completed", "k1", "exp", {})
    CampaignFeed(host_b).emit_trial("completed", "k2", "exp", {})
    assert main([str(host_a), str(host_b)]) == 0
    assert "2/2 trials" in capsys.readouterr().out
