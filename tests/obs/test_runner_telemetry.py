"""Sweep-runner telemetry aggregation: fork isolation, caches, resume.

Per-trial summaries must survive every execution path the runner has —
in-process, process pool, resilient single-trial forks, content-addressed
cache hits, and checkpoint-journal resume — and fold into the parent
collector identically in each case.
"""

from repro import obs
from repro.experiments.runner import (
    Trial,
    run_sweep,
    run_trial,
    run_trial_with_summary,
)

TRIALS = [
    Trial("fig7c", {"sizes": [8], "seeds": [0]}),
    Trial("fig7c", {"sizes": [8], "seeds": [1]}),
]


def _snap(tel):
    return tel.metrics.snapshot()


def test_run_trial_with_summary_matches_plain_run_trial():
    result, summary = run_trial_with_summary(TRIALS[0])
    assert result == run_trial(TRIALS[0])
    assert summary["wall_s"] > 0
    assert "polling.delivered" in summary["metrics"]
    # fig7c drives the slot-level scheduler standalone: request spans on
    # the slot clock plus the profiled solve, no DES cycle spans.
    assert "slot:request" in summary["spans"]


def test_in_process_sweep_aggregates(tmp_path):
    tel = obs.Telemetry()
    run_sweep(TRIALS, telemetry=tel)
    snap = _snap(tel)
    assert snap["runner.trials"]["value"] == 2
    assert "runner.cache_hits" not in snap
    assert snap["runner.trial_wall_s"]["count"] == 2
    assert snap["polling.delivered"]["value"] > 0
    assert tel.merged_runs == 2
    assert tel.merged_spans["slot:request"]["count"] > 0


def test_cache_hits_replay_stored_summaries(tmp_path):
    first = obs.Telemetry()
    r1 = run_sweep(TRIALS, cache_dir=tmp_path, telemetry=first)
    second = obs.Telemetry()
    r2 = run_sweep(TRIALS, cache_dir=tmp_path, telemetry=second)
    assert r1 == r2
    snap = _snap(second)
    assert snap["runner.trials"]["value"] == 2
    assert snap["runner.cache_hits"]["value"] == 2
    # The cached summaries carry the same simulation metrics as fresh runs.
    assert snap["polling.delivered"] == _snap(first)["polling.delivered"]


def test_pool_workers_ship_summaries(tmp_path):
    tel = obs.Telemetry()
    results = run_sweep(TRIALS, processes=2, telemetry=tel)
    assert results == run_sweep(TRIALS)
    snap = _snap(tel)
    assert snap["runner.trials"]["value"] == 2
    assert snap["polling.delivered"]["value"] > 0


def test_resilient_path_ships_summaries(tmp_path):
    tel = obs.Telemetry()
    journal = tmp_path / "sweep.jsonl"
    results = run_sweep(TRIALS, retries=1, checkpoint=journal, telemetry=tel)
    assert results == run_sweep(TRIALS)
    snap = _snap(tel)
    assert snap["runner.trials"]["value"] == 2
    assert snap["polling.delivered"]["value"] > 0

    resumed = obs.Telemetry()
    r2 = run_sweep(
        TRIALS, retries=1, checkpoint=journal, resume=True, telemetry=resumed
    )
    assert r2 == results
    snap2 = _snap(resumed)
    assert snap2["runner.trials"]["value"] == 2
    assert snap2["runner.cache_hits"]["value"] == 2
    assert snap2["polling.delivered"] == snap["polling.delivered"]


def test_no_telemetry_is_the_default_and_free(tmp_path):
    # No telemetry argument: results identical, nothing collected anywhere.
    assert run_sweep(TRIALS) == run_sweep(TRIALS, telemetry=None)
    disabled = obs.Telemetry(enabled=False)
    run_sweep(TRIALS, telemetry=disabled)
    assert len(disabled.metrics) == 0
    assert disabled.merged_runs == 0
