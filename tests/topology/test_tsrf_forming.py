"""Tests for the TSRF gadget structure and cluster forming."""

import numpy as np
import pytest

from repro.topology import (
    HEAD,
    bfs_discover,
    build_tsrf,
    cluster_adjacency,
    form_clusters,
    voronoi_assignment,
)


# --- TSRF ---------------------------------------------------------------------

def test_tsrf_structure():
    tsrf = build_tsrf(4)
    c = tsrf.cluster
    assert c.n_sensors == 8
    for b in range(4):
        s, sp = tsrf.first_level(b), tsrf.second_level(b)
        assert c.can_hear(s, sp) and c.can_hear(sp, s)
        assert c.can_hear(HEAD, s)
        assert not c.can_hear(HEAD, sp)
        assert c.packets[s] == 0 and c.packets[sp] == 1
        assert tsrf.relaying_path(b) == (sp, s, HEAD)
    # no cross-branch links
    assert not c.can_hear(tsrf.first_level(0), tsrf.second_level(1))
    assert not c.can_hear(tsrf.first_level(0), tsrf.first_level(1))


def test_tsrf_branch_of():
    tsrf = build_tsrf(3)
    assert tsrf.branch_of(tsrf.first_level(2)) == 2
    assert tsrf.branch_of(tsrf.second_level(1)) == 1
    with pytest.raises(ValueError):
        tsrf.branch_of(HEAD)
    with pytest.raises(ValueError):
        tsrf.branch_of(99)


def test_tsrf_validation():
    with pytest.raises(ValueError):
        build_tsrf(0)
    tsrf = build_tsrf(2)
    with pytest.raises(ValueError):
        tsrf.first_level(5)


def test_tsrf_hop_counts():
    tsrf = build_tsrf(3)
    hops = tsrf.cluster.min_hop_counts()
    for b in range(3):
        assert hops[tsrf.first_level(b)] == 1
        assert hops[tsrf.second_level(b)] == 2


# --- Voronoi forming ------------------------------------------------------------

def test_voronoi_assignment_nearest_head():
    sensors = [[0.0, 0.0], [10.0, 0.0], [4.9, 0.0]]
    heads = [[0.0, 0.0], [10.0, 0.0]]
    assert voronoi_assignment(sensors, heads).tolist() == [0, 1, 0]


def test_voronoi_tie_breaks_to_lower_index():
    assert voronoi_assignment([[5.0, 0.0]], [[0.0, 0.0], [10.0, 0.0]]).tolist() == [0]


def test_form_clusters_partitions_everyone():
    rng = np.random.default_rng(0)
    sensors = rng.uniform(0, 300, size=(40, 2))
    heads = np.array([[75.0, 75.0], [225.0, 225.0]])
    net = form_clusters(sensors, heads, comm_range=60.0)
    assert net.n_clusters == 2
    total = sum(len(m) for m in net.members)
    assert total == 40
    # local clusters index consistently back to global sensors
    for h in range(2):
        for local, global_idx in enumerate(net.members[h]):
            assert np.allclose(
                net.clusters[h].positions[local], sensors[global_idx]
            )


def test_cluster_adjacency_symmetry():
    rng = np.random.default_rng(1)
    sensors = rng.uniform(0, 200, size=(30, 2))
    heads = np.array([[50.0, 50.0], [150.0, 150.0], [50.0, 150.0]])
    net = form_clusters(sensors, heads, comm_range=50.0)
    adj = cluster_adjacency(net, interference_range=80.0)
    assert np.array_equal(adj, adj.T)
    assert not np.diagonal(adj).any()


# --- hop-by-hop discovery --------------------------------------------------------

def test_bfs_discover_covers_connected_cluster(chain_cluster):
    result = bfs_discover(chain_cluster)
    assert result.discovered == [0, 1, 2, 3]
    assert result.parent[0] == HEAD
    assert result.parent[3] == 2
    assert result.hops.tolist() == [1.0, 2.0, 3.0, 4.0]


def test_bfs_discover_temporary_paths(chain_cluster):
    result = bfs_discover(chain_cluster)
    assert result.temporary_path(3) == (3, 2, 1, 0, HEAD)
    assert result.temporary_path(0) == (0, HEAD)


def test_bfs_discover_skips_unreachable():
    from repro.topology import Cluster

    c = Cluster.from_edges(3, [(0, 1)], [0])
    result = bfs_discover(c)
    assert 2 not in result.discovered
    assert result.parent[2] is None
    with pytest.raises(ValueError):
        result.temporary_path(2)


def test_bfs_discover_requires_bidirectional_links():
    from repro.topology import Cluster

    # 1 can hear 0's probe but 0 can't hear 1 back: unusable for relaying.
    c = Cluster.from_edges(2, [(1, 0)], [0], symmetric=False)
    result = bfs_discover(c)
    assert result.discovered == [0]
