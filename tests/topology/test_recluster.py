"""Online re-clustering: triggers, tracker, discovery, and the re-form pass.

Pure-computation layer (DESIGN.md §11): the MAC owns *when* these run; here
we pin down *what* they decide and produce — trigger semantics per reason,
discovery against the live medium (including after the positions moved),
and the re-form's exclusion/admission contract.
"""

import numpy as np
import pytest

from repro.net.cluster_sim import PollingSimConfig, run_polling_simulation
from repro.topology import (
    StalenessTracker,
    StalenessTrigger,
    assignment_staleness,
    discovered_cluster,
    reform_cluster,
)


# -- trigger validation --------------------------------------------------------


def test_trigger_defaults_are_armed():
    t = StalenessTrigger()
    assert t.membership_delta == 1
    assert t.repair_fallbacks == 3
    assert t.overload_factor == 0.0
    assert t.period_cycles == 0


@pytest.mark.parametrize(
    "kwargs",
    [
        {"membership_delta": -1},
        {"repair_fallbacks": -1},
        {"overload_factor": -0.5},
        {"period_cycles": -2},
    ],
)
def test_trigger_rejects_negatives(kwargs):
    with pytest.raises(ValueError):
        StalenessTrigger(**kwargs)


def test_trigger_zero_means_disabled():
    # A pure-periodic policy must be expressible: every observed-staleness
    # condition off, only the cadence armed.
    t = StalenessTrigger(membership_delta=0, repair_fallbacks=0, period_cycles=2)
    tracker = StalenessTracker(t)
    tracker.note_join(5)
    tracker.note_repair()
    assert tracker.due() is None  # disabled conditions never fire
    tracker.note_cycle()
    assert tracker.due() is None
    tracker.note_cycle()
    assert tracker.due() == "periodic"


# -- tracker / due() semantics -------------------------------------------------


def test_membership_delta_counts_joins_and_leaves():
    tracker = StalenessTracker(StalenessTrigger(membership_delta=2))
    tracker.note_join(9)
    assert tracker.due() is None
    tracker.note_leave(3)
    assert tracker.due() == "membership"


def test_repair_fallbacks_fire_after_threshold():
    tracker = StalenessTracker(
        StalenessTrigger(membership_delta=0, repair_fallbacks=2)
    )
    tracker.note_repair()
    assert tracker.due() is None
    tracker.note_repair()
    assert tracker.due() == "repairs"


def test_overload_consults_loaded_relays_only():
    tracker = StalenessTracker(
        StalenessTrigger(membership_delta=0, repair_fallbacks=0, overload_factor=2.0)
    )
    balanced = np.array([0.0, 3.0, 3.0, 3.0])  # zeros are non-relays
    assert tracker.due(balanced) is None
    skewed = np.array([0.0, 9.0, 1.0, 1.0])  # 9 >= 2.0 * mean(9,1,1)
    assert tracker.due(skewed) == "overload"
    assert tracker.due(None) is None  # no loads, no opinion


def test_membership_outranks_periodic():
    tracker = StalenessTracker(StalenessTrigger(period_cycles=1))
    tracker.note_cycle()
    tracker.note_join(0)
    assert tracker.due() == "membership"


def test_reset_clears_counters_and_counts_reforms():
    tracker = StalenessTracker(StalenessTrigger(period_cycles=1))
    tracker.note_join(1)
    tracker.note_repair()
    tracker.note_cycle()
    tracker.reset()
    assert tracker.due() is None
    assert (
        tracker.joins_pending,
        tracker.repairs_pending,
        tracker.cycles_since_reform,
    ) == (0, 0, 0)
    assert tracker.reforms == 1


# -- discovery against the live medium -----------------------------------------


@pytest.fixture(scope="module")
def finished_run():
    return run_polling_simulation(
        PollingSimConfig(n_sensors=12, n_cycles=2, seed=5)
    )


def test_discovered_cluster_matches_deployment(finished_run):
    phy = finished_run.phy
    fresh = discovered_cluster(phy)
    n = phy.n_sensors
    assert fresh.hears.shape == (n, n)
    assert fresh.head_hears.shape == (n,)
    np.testing.assert_array_equal(fresh.positions, phy.medium.positions[:n])
    # Nothing moved since deploy, so discovery reproduces the formed graph.
    np.testing.assert_array_equal(fresh.hears, phy.cluster.hears)
    np.testing.assert_array_equal(fresh.head_hears, phy.cluster.head_hears)
    # Demand and energy are carried over, not reset.
    np.testing.assert_array_equal(fresh.packets, phy.cluster.packets)


def test_discovered_cluster_sees_moved_positions(finished_run):
    phy = finished_run.phy
    moved = phy.medium.positions.copy()
    moved[0] = [1e6, 1e6]  # node 0 walks out of every link's range
    phy.medium.update_positions(moved)
    try:
        fresh = discovered_cluster(phy)
        assert not fresh.hears[0].any()
        assert not fresh.hears[:, 0].any()
        assert not fresh.head_hears[0]
        np.testing.assert_array_equal(fresh.positions[0], [1e6, 1e6])
    finally:
        moved[0] = phy.cluster.positions[0]
        phy.medium.update_positions(moved)


# -- the re-form pass ----------------------------------------------------------


def test_reform_excludes_and_admits(finished_run):
    phy = finished_run.phy
    result = reform_cluster(phy, excluded={2}, admitted={7})
    assert result.excluded == frozenset({2})
    assert result.admitted == frozenset({7})
    plan = result.routing.routing_plan()
    assert 2 not in plan.paths
    for path in plan.paths.values():
        assert 2 not in path
    # Everyone else still reachable on this dense deployment.
    covered = set(plan.paths) | set(result.repair.uncovered)
    assert covered == set(range(phy.n_sensors)) - {2}


def test_reform_with_no_exclusions_covers_everyone(finished_run):
    phy = finished_run.phy
    result = reform_cluster(phy, excluded=set())
    assert result.repair.uncovered == frozenset()
    assert set(result.routing.routing_plan().paths) == set(range(phy.n_sensors))


# -- network-level staleness gauge ---------------------------------------------


def test_assignment_staleness_zero_when_fresh():
    sensors = np.array([[0.0, 0.0], [10.0, 0.0]])
    heads = np.array([[0.0, 1.0], [10.0, 1.0]])
    assign = np.array([0, 1])
    assert assignment_staleness(sensors, heads, assign) == 0.0


def test_assignment_staleness_counts_moved_sensors():
    sensors = np.array([[0.0, 0.0], [10.0, 0.0]])
    heads = np.array([[0.0, 1.0], [10.0, 1.0]])
    stale = np.array([1, 1])  # sensor 0 would pick head 0 today
    assert assignment_staleness(sensors, heads, stale) == 0.5


def test_assignment_staleness_empty_is_zero():
    assert assignment_staleness(np.empty((0, 2)), np.empty((0, 2)), np.empty(0)) == 0.0
