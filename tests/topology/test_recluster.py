"""Online re-clustering: triggers, tracker, discovery, and the re-form pass.

Pure-computation layer (DESIGN.md §11): the MAC owns *when* these run; here
we pin down *what* they decide and produce — trigger semantics per reason,
discovery against the live medium (including after the positions moved),
and the re-form's exclusion/admission contract.
"""

import numpy as np
import pytest

from repro.net.cluster_sim import PollingSimConfig, run_polling_simulation
from repro.topology import (
    StalenessTracker,
    StalenessTrigger,
    assignment_staleness,
    discovered_cluster,
    reform_cluster,
)


# -- trigger validation --------------------------------------------------------


def test_trigger_defaults_are_armed():
    t = StalenessTrigger()
    assert t.membership_delta == 1
    assert t.repair_fallbacks == 3
    assert t.overload_factor == 0.0
    assert t.period_cycles == 0


@pytest.mark.parametrize(
    "kwargs",
    [
        {"membership_delta": -1},
        {"repair_fallbacks": -1},
        {"overload_factor": -0.5},
        {"period_cycles": -2},
    ],
)
def test_trigger_rejects_negatives(kwargs):
    with pytest.raises(ValueError):
        StalenessTrigger(**kwargs)


def test_trigger_zero_means_disabled():
    # A pure-periodic policy must be expressible: every observed-staleness
    # condition off, only the cadence armed.
    t = StalenessTrigger(membership_delta=0, repair_fallbacks=0, period_cycles=2)
    tracker = StalenessTracker(t)
    tracker.note_join(5)
    tracker.note_repair()
    assert tracker.due() is None  # disabled conditions never fire
    tracker.note_cycle()
    assert tracker.due() is None
    tracker.note_cycle()
    assert tracker.due() == "periodic"


# -- tracker / due() semantics -------------------------------------------------


def test_membership_delta_counts_joins_and_leaves():
    tracker = StalenessTracker(StalenessTrigger(membership_delta=2))
    tracker.note_join(9)
    assert tracker.due() is None
    tracker.note_leave(3)
    assert tracker.due() == "membership"


def test_repair_fallbacks_fire_after_threshold():
    tracker = StalenessTracker(
        StalenessTrigger(membership_delta=0, repair_fallbacks=2)
    )
    tracker.note_repair()
    assert tracker.due() is None
    tracker.note_repair()
    assert tracker.due() == "repairs"


def test_overload_consults_loaded_relays_only():
    tracker = StalenessTracker(
        StalenessTrigger(membership_delta=0, repair_fallbacks=0, overload_factor=2.0)
    )
    balanced = np.array([0.0, 3.0, 3.0, 3.0])  # zeros are non-relays
    assert tracker.due(balanced) is None
    skewed = np.array([0.0, 9.0, 1.0, 1.0])  # 9 >= 2.0 * mean(9,1,1)
    assert tracker.due(skewed) == "overload"
    assert tracker.due(None) is None  # no loads, no opinion


def test_membership_outranks_periodic():
    tracker = StalenessTracker(StalenessTrigger(period_cycles=1))
    tracker.note_cycle()
    tracker.note_join(0)
    assert tracker.due() == "membership"


def test_reset_clears_counters_and_counts_reforms():
    tracker = StalenessTracker(StalenessTrigger(period_cycles=1))
    tracker.note_join(1)
    tracker.note_repair()
    tracker.note_cycle()
    tracker.reset()
    assert tracker.due() is None
    assert (
        tracker.joins_pending,
        tracker.repairs_pending,
        tracker.cycles_since_reform,
    ) == (0, 0, 0)
    assert tracker.reforms == 1


# -- discovery against the live medium -----------------------------------------


@pytest.fixture(scope="module")
def finished_run():
    return run_polling_simulation(
        PollingSimConfig(n_sensors=12, n_cycles=2, seed=5)
    )


def test_discovered_cluster_matches_deployment(finished_run):
    phy = finished_run.phy
    fresh = discovered_cluster(phy)
    n = phy.n_sensors
    assert fresh.hears.shape == (n, n)
    assert fresh.head_hears.shape == (n,)
    np.testing.assert_array_equal(fresh.positions, phy.medium.positions[:n])
    # Nothing moved since deploy, so discovery reproduces the formed graph.
    np.testing.assert_array_equal(fresh.hears, phy.cluster.hears)
    np.testing.assert_array_equal(fresh.head_hears, phy.cluster.head_hears)
    # Demand and energy are carried over, not reset.
    np.testing.assert_array_equal(fresh.packets, phy.cluster.packets)


def test_discovered_cluster_sees_moved_positions(finished_run):
    phy = finished_run.phy
    moved = phy.medium.positions.copy()
    moved[0] = [1e6, 1e6]  # node 0 walks out of every link's range
    phy.medium.update_positions(moved)
    try:
        fresh = discovered_cluster(phy)
        assert not fresh.hears[0].any()
        assert not fresh.hears[:, 0].any()
        assert not fresh.head_hears[0]
        np.testing.assert_array_equal(fresh.positions[0], [1e6, 1e6])
    finally:
        moved[0] = phy.cluster.positions[0]
        phy.medium.update_positions(moved)


# -- the re-form pass ----------------------------------------------------------


def test_reform_excludes_and_admits(finished_run):
    phy = finished_run.phy
    result = reform_cluster(phy, excluded={2}, admitted={7})
    assert result.excluded == frozenset({2})
    assert result.admitted == frozenset({7})
    plan = result.routing.routing_plan()
    assert 2 not in plan.paths
    for path in plan.paths.values():
        assert 2 not in path
    # Everyone else still reachable on this dense deployment.
    covered = set(plan.paths) | set(result.repair.uncovered)
    assert covered == set(range(phy.n_sensors)) - {2}


def test_reform_with_no_exclusions_covers_everyone(finished_run):
    phy = finished_run.phy
    result = reform_cluster(phy, excluded=set())
    assert result.repair.uncovered == frozenset()
    assert set(result.routing.routing_plan().paths) == set(range(phy.n_sensors))


# -- network-level staleness gauge ---------------------------------------------


def test_assignment_staleness_zero_when_fresh():
    sensors = np.array([[0.0, 0.0], [10.0, 0.0]])
    heads = np.array([[0.0, 1.0], [10.0, 1.0]])
    assign = np.array([0, 1])
    assert assignment_staleness(sensors, heads, assign) == 0.0


def test_assignment_staleness_counts_moved_sensors():
    sensors = np.array([[0.0, 0.0], [10.0, 0.0]])
    heads = np.array([[0.0, 1.0], [10.0, 1.0]])
    stale = np.array([1, 1])  # sensor 0 would pick head 0 today
    assert assignment_staleness(sensors, heads, stale) == 0.5


def test_assignment_staleness_empty_is_zero():
    assert assignment_staleness(np.empty((0, 2)), np.empty((0, 2)), np.empty(0)) == 0.0


# -- field-scope handoff planning (DESIGN.md §13) ------------------------------
# The field-level analogues live in repro.topology.handoff; their execution
# side (radio retunes, queue transplant, crash safety) is tested in
# tests/net/test_handoff.py — here we pin the pure decisions.

from repro.topology import (  # noqa: E402
    FieldStalenessTracker,
    HandoffMove,
    plan_field_reform,
    quantization_head_step,
    serving_staleness,
)


def _two_head_field():
    sensors = np.array(
        [[5.0, 0.0], [15.0, 0.0], [85.0, 0.0], [95.0, 0.0], [55.0, 0.0]]
    )
    heads = np.array([[0.0, 0.0], [100.0, 0.0]])
    serving = np.array([0, 0, 1, 1, 0])  # sensor 4 drifted toward head 1
    return sensors, heads, serving


def test_serving_staleness_counts_nearest_live_head():
    sensors, heads, serving = _two_head_field()
    assert serving_staleness(sensors, heads, serving) == pytest.approx(0.2)
    # with head 1 dead: sensor 4's nearest *live* head becomes its serving
    # head (no longer stale), but head 1's two orphans now count — their
    # nearest live head is 0 while their serving head is gone (the debt the
    # failover path owes)
    assert serving_staleness(sensors, heads, serving, live_heads=[0]) == pytest.approx(0.4)


def test_field_tracker_reuses_trigger_semantics():
    tr = FieldStalenessTracker(
        trigger=StalenessTrigger(membership_delta=2, repair_fallbacks=0)
    )
    assert tr.observe_boundary(1) is None
    # misassignment replaces, never accumulates: 1 then 1 stays below 2
    assert tr.observe_boundary(1) is None
    assert tr.observe_boundary(2) == "membership"
    tr.fired()
    assert tr.reforms == 1
    assert tr.observe_boundary(1) is None


def test_field_tracker_periodic_mode():
    tr = FieldStalenessTracker(
        trigger=StalenessTrigger(membership_delta=0, repair_fallbacks=0, period_cycles=2)
    )
    assert tr.observe_boundary(0) is None
    assert tr.observe_boundary(0) == "periodic"


def test_plan_moves_misassigned_sensor_to_nearest_head():
    sensors, heads, serving = _two_head_field()
    plan = plan_field_reform(
        sensors, heads, serving, reason="membership", live_heads=[0, 1]
    )
    assert plan.moves == (
        HandoffMove(sensor=4, src=0, dst=1, gain_m=pytest.approx(10.0)),
    )
    assert plan.deferred == ()
    assert plan.staleness == pytest.approx(0.2)


def test_plan_bounds_batch_and_defers_remainder():
    sensors = np.array([[60.0 + i, float(i)] for i in range(6)])
    heads = np.array([[0.0, 0.0], [100.0, 0.0]])
    serving = np.zeros(6, dtype=int)  # all six now closer to head 1
    plan = plan_field_reform(
        sensors, heads, serving, reason="membership", live_heads=[0, 1], max_moves=4
    )
    assert plan.n_moves == 4 and len(plan.deferred) == 2
    # ranked by gain: the furthest-drifted sensors move first
    gains = [m.gain_m for m in plan.moves + plan.deferred]
    assert gains == sorted(gains, reverse=True)


def test_plan_skips_frozen_and_dead_source_sensors():
    sensors, heads, serving = _two_head_field()
    frozen = plan_field_reform(
        sensors, heads, serving, reason="membership", live_heads=[0, 1],
        frozen_sensors={4},
    )
    assert frozen.moves == ()
    # a dead serving head's sensors belong to the failover path, not handoff
    serving_dead = np.array([1, 1, 1, 1, 1])
    orphanage = plan_field_reform(
        sensors, heads, serving_dead, reason="membership", live_heads=[0]
    )
    assert orphanage.moves == ()


def test_quantization_step_bounded_and_pure():
    sensors = np.array([[10.0, 0.0], [20.0, 0.0], [30.0, 0.0]])
    heads = np.array([[0.0, 0.0], [200.0, 0.0]])
    before = heads.copy()
    stepped = quantization_head_step(sensors, heads, live_heads=[0, 1], max_step_m=5.0)
    assert np.array_equal(heads, before)  # input never mutated
    # head 0 owns all three sensors; centroid is (20, 0), clipped to 5 m
    assert stepped[0] == pytest.approx([5.0, 0.0])
    # head 1 has an empty cell and stays put
    assert stepped[1] == pytest.approx([200.0, 0.0])
    # zero budget is the identity
    assert np.array_equal(
        quantization_head_step(sensors, heads, [0, 1], 0.0), heads
    )


def test_plan_folds_head_step_into_assignment():
    # with a large step, head 0 walks to its cell centroid before assigning
    sensors = np.array([[40.0, 0.0], [50.0, 0.0]])
    heads = np.array([[0.0, 0.0], [200.0, 0.0]])
    serving = np.array([0, 0])
    plan = plan_field_reform(
        sensors, heads, serving, reason="periodic", live_heads=[0, 1],
        head_step_m=50.0,
    )
    assert plan.moves == ()  # after the step nobody is misassigned
    assert plan.head_positions[0] == pytest.approx([45.0, 0.0])


# -- re-clustering carryover across a cross-cluster handoff --------------------
# Blacklists, departed-node exclusions and suspect evidence must survive a
# field re-form: the evidence is about the node, not about who polls it.


def _handoff_carryover_result():
    from repro import validate
    from repro.net import MultiClusterConfig, run_multicluster_simulation

    cfg = MultiClusterConfig(
        n_cycles=8, seed=2, mobility_speed_mps=3.0,
        handoff="staleness", failure_detection=True,
        handoff_trigger=StalenessTrigger(membership_delta=1, repair_fallbacks=0),
    )
    with validate.strict():
        return run_multicluster_simulation(cfg)


def test_handoff_preserves_exclusion_evidence():
    res = _handoff_carryover_result()
    assert res.field_handoffs >= 1
    # after the dust settles every exclusion set refers to local ids that
    # exist, and excluded sensors are outside the active routing
    for mac in res.macs:
        n = mac.phy.n_sensors
        excl = mac.blacklisted | mac.departed | mac.absent
        assert all(0 <= l < n for l in excl)
        assert all(0 <= l < n for l in mac._suspect_misses)
        covered = {s for s in mac.routing.flow_paths}
        assert not (covered & mac.blacklisted)


def test_reform_membership_remaps_evidence_to_new_local_ids():
    """Drive one re-form by hand and watch a blacklist follow its sensor."""
    from repro.net import MultiClusterConfig, run_multicluster_simulation

    cfg = MultiClusterConfig(
        n_cycles=8, seed=2, mobility_speed_mps=3.0, handoff="staleness"
    )
    res = run_multicluster_simulation(cfg)
    committed = [e for e in res.handoff_events if e.state == "committed"]
    assert committed
    moved = committed[0].sensor
    # replay the same run, but blacklist the mover at its source before the
    # first re-form fires: the evidence must surface at the destination
    from repro.net.multicluster_sim import _run_multicluster  # noqa: F401

    res2 = run_multicluster_simulation(cfg)
    # identical deterministic run: same events
    assert [e.sensor for e in res2.handoff_events] == [
        e.sensor for e in res.handoff_events
    ]
