"""Tests for the Cluster structure: hearing, hops, validation."""

import numpy as np
import pytest

from repro.topology import HEAD, Cluster, line, node_name, uniform_square


def test_node_name():
    assert node_name(HEAD) == "t"
    assert node_name(3) == "s3"


def test_from_edges_symmetric_hearing(fig2_cluster):
    c = fig2_cluster
    assert c.can_hear(0, 1) and c.can_hear(1, 0)
    assert not c.can_hear(0, 2)
    assert c.can_hear(HEAD, 0) and c.can_hear(HEAD, 2)
    assert not c.can_hear(HEAD, 1)
    # everyone hears the head (its power covers the cluster)
    assert all(c.can_hear(s, HEAD) for s in range(3))


def test_asymmetric_hearing_supported():
    c = Cluster.from_edges(2, [(0, 1)], [0], symmetric=False)
    assert c.can_hear(0, 1) and not c.can_hear(1, 0)


def test_no_self_hearing():
    c = Cluster.from_edges(2, [(0, 1)], [0])
    assert not c.can_hear(0, 0)
    with pytest.raises(ValueError):
        Cluster.from_edges(2, [(1, 1)], [0])


def test_construction_validation():
    with pytest.raises(ValueError):
        Cluster(hears=np.zeros((2, 3), dtype=bool), head_hears=np.zeros(2, dtype=bool))
    with pytest.raises(ValueError):
        Cluster(hears=np.zeros((2, 2), dtype=bool), head_hears=np.zeros(3, dtype=bool))
    with pytest.raises(ValueError):
        Cluster(
            hears=np.zeros((2, 2), dtype=bool),
            head_hears=np.zeros(2, dtype=bool),
            packets=[-1, 0],
        )
    with pytest.raises(ValueError):
        Cluster(
            hears=np.zeros((2, 2), dtype=bool),
            head_hears=np.zeros(2, dtype=bool),
            energy=[0.0, 1.0],
        )
    bad = np.zeros((2, 2), dtype=bool)
    bad[0, 0] = True
    with pytest.raises(ValueError):
        Cluster(hears=bad, head_hears=np.zeros(2, dtype=bool))


def test_default_packets_are_one_each(chain_cluster):
    c = Cluster.from_edges(3, [(0, 1)], [0])
    assert c.packets.tolist() == [1, 1, 1]
    assert c.total_packets == 3


def test_neighbors_of(fig2_cluster):
    assert fig2_cluster.neighbors_of(1) == [0]
    assert fig2_cluster.neighbors_of(0) == [1, HEAD]
    assert fig2_cluster.neighbors_of(2) == [HEAD]


def test_first_level_sensors(fig2_cluster):
    assert fig2_cluster.first_level_sensors() == [0, 2]


def test_min_hop_counts_chain(chain_cluster):
    assert chain_cluster.min_hop_counts().tolist() == [1.0, 2.0, 3.0, 4.0]


def test_min_hop_counts_unreachable():
    c = Cluster.from_edges(3, [(0, 1)], [0])  # sensor 2 isolated
    hops = c.min_hop_counts()
    assert hops[0] == 1 and hops[1] == 2 and np.isinf(hops[2])
    assert not c.is_connected()


def test_is_connected(chain_cluster, star_cluster):
    assert chain_cluster.is_connected()
    assert star_cluster.is_connected()


def test_from_deployment_matches_geometry():
    dep = line(3, spacing=10.0)
    c = Cluster.from_deployment(dep)
    assert c.can_hear(1, 0) and not c.can_hear(2, 0)
    assert c.first_level_sensors() == [0]
    assert c.positions is not None and c.head_position is not None


def test_with_packets_copies(chain_cluster):
    c2 = chain_cluster.with_packets([0, 0, 5, 0])
    assert c2.packets.tolist() == [0, 0, 5, 0]
    assert chain_cluster.packets.tolist() == [1, 1, 1, 1]
    c2.hears[0, 1] = False
    assert chain_cluster.hears[0, 1]  # deep copy


def test_edge_bounds_checked():
    with pytest.raises(ValueError):
        Cluster.from_edges(2, [(0, 5)], [0])
    with pytest.raises(ValueError):
        Cluster.from_edges(2, [], [7])
