"""Tests for vectorized geometry helpers."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra.numpy import arrays

from repro.topology import (
    as_positions,
    distances_to_point,
    nearest_index,
    pairwise_distances,
    within_range_adjacency,
)


def test_as_positions_promotes_single_point():
    assert as_positions([1.0, 2.0]).shape == (1, 2)


def test_as_positions_rejects_bad_shapes():
    with pytest.raises(ValueError):
        as_positions(np.zeros((3, 3)))
    with pytest.raises(ValueError):
        as_positions(np.zeros((2, 2, 2)))


def test_pairwise_distances_known_values():
    pts = [[0.0, 0.0], [3.0, 4.0], [0.0, 8.0]]
    d = pairwise_distances(pts)
    assert d[0, 1] == pytest.approx(5.0)
    assert d[1, 2] == pytest.approx(5.0)
    assert d[0, 2] == pytest.approx(8.0)
    assert (np.diagonal(d) == 0).all()


finite_pts = arrays(
    np.float64,
    st.tuples(st.integers(2, 8), st.just(2)),
    elements=st.floats(-1e3, 1e3),
)


@given(finite_pts)
def test_pairwise_distances_symmetric_nonnegative(pts):
    d = pairwise_distances(pts)
    assert np.allclose(d, d.T)
    assert (d >= 0).all()


@given(finite_pts)
def test_triangle_inequality(pts):
    d = pairwise_distances(pts)
    n = d.shape[0]
    for i in range(n):
        for j in range(n):
            for k in range(n):
                assert d[i, j] <= d[i, k] + d[k, j] + 1e-6


def test_distances_to_point():
    pts = [[0.0, 0.0], [6.0, 8.0]]
    d = distances_to_point(pts, [0.0, 0.0])
    assert d[0] == 0.0 and d[1] == pytest.approx(10.0)


def test_within_range_adjacency_excludes_self():
    pts = [[0.0, 0.0], [1.0, 0.0], [10.0, 0.0]]
    adj = within_range_adjacency(pts, 2.0)
    assert adj[0, 1] and adj[1, 0]
    assert not adj[0, 2] and not adj[2, 0]
    assert not np.diagonal(adj).any()


def test_within_range_requires_positive_range():
    with pytest.raises(ValueError):
        within_range_adjacency([[0.0, 0.0]], 0.0)


def test_nearest_index():
    pts = [[0.0, 0.0], [5.0, 5.0], [1.0, 1.0]]
    assert nearest_index(pts, [1.1, 1.1]) == 2
