"""Tests for deployments: connectivity guarantees, determinism, shapes."""

import numpy as np
import pytest

from repro.topology import Deployment, grid, line, uniform_square


def test_uniform_square_is_connected_and_seeded():
    dep1 = uniform_square(20, seed=3)
    dep2 = uniform_square(20, seed=3)
    assert dep1.is_connected()
    assert np.array_equal(dep1.positions, dep2.positions)


def test_uniform_square_different_seeds_differ():
    a = uniform_square(15, seed=1)
    b = uniform_square(15, seed=2)
    assert not np.array_equal(a.positions, b.positions)


def test_uniform_square_head_at_center():
    dep = uniform_square(10, seed=0, side=100.0, comm_range=40.0)
    assert dep.head_position == pytest.approx([50.0, 50.0])


def test_uniform_square_positions_inside_square():
    dep = uniform_square(50, seed=4, side=120.0, comm_range=50.0)
    assert (dep.positions >= 0).all() and (dep.positions <= 120.0).all()


def test_impossible_parameters_raise():
    with pytest.raises(RuntimeError):
        uniform_square(5, seed=0, side=10_000.0, comm_range=10.0, max_attempts=5)
    with pytest.raises(ValueError):
        uniform_square(0)


def test_grid_shape_and_connectivity():
    dep = grid(3, 4, spacing=10.0)
    assert dep.n_sensors == 12
    assert dep.is_connected()
    adj = dep.sensor_adjacency()
    # corner sensor (0,0): neighbors right, up, diagonal = 3
    assert adj[0].sum() == 3


def test_grid_validation():
    with pytest.raises(ValueError):
        grid(0, 3, 1.0)
    with pytest.raises(ValueError):
        grid(2, 2, -1.0)


def test_line_is_a_chain():
    dep = line(5, spacing=10.0)
    adj = dep.sensor_adjacency()
    # sensor i hears only i-1 and i+1
    for i in range(5):
        expected = {j for j in (i - 1, i + 1) if 0 <= j < 5}
        assert set(np.flatnonzero(adj[i])) == expected
    # only the first sensor reaches the head
    assert list(np.flatnonzero(dep.head_reachable())) == [0]
    assert dep.is_connected()


def test_line_hop_depth_matches_position():
    from repro.topology import Cluster

    cluster = Cluster.from_deployment(line(4, spacing=10.0))
    hops = cluster.min_hop_counts()
    assert hops.tolist() == [1.0, 2.0, 3.0, 4.0]


def test_deployment_disconnection_detected():
    positions = np.array([[1.0, 0.0], [2.0, 0.0], [100.0, 0.0]])
    dep = Deployment(
        head_position=np.array([0.0, 0.0]),
        positions=positions,
        comm_range=1.5,
        side=100.0,
    )
    assert not dep.is_connected()


def test_no_sensor_hears_head_means_disconnected():
    dep = Deployment(
        head_position=np.array([0.0, 0.0]),
        positions=np.array([[50.0, 0.0], [51.0, 0.0]]),
        comm_range=5.0,
        side=60.0,
    )
    assert not dep.is_connected()
