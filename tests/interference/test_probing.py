"""Tests for probing-based discovery (Sec. V-B / V-E)."""

import numpy as np
import pytest

from repro.interference import (
    GroupTableOracle,
    PhysicalModelOracle,
    probe_connectivity,
    probe_cost,
    probe_groups,
)
from repro.mac.base import geometric_oracle
from repro.topology import HEAD, Cluster, uniform_square


def make_truth(n_links: int = 3):
    """A physical truth channel with known structure."""
    n = 2 * n_links
    power = np.zeros((n + 1, n + 1))
    for k in range(n_links):
        power[2 * k + 1, 2 * k] = 1.0  # link 2k -> 2k+1
    # links 0 and 1 are mutually quiet; link 2 jams link 0's receiver
    if n_links >= 3:
        power[1, 4] = 0.5
    return PhysicalModelOracle(power, beta=10.0, noise=1e-6, max_group_size=2)


def test_probe_connectivity_matches_truth():
    truth = make_truth()
    hears, head_hears = probe_connectivity(truth, 6)
    assert hears[1, 0] and hears[3, 2] and hears[5, 4]
    assert not hears[0, 1]  # directional
    assert not head_hears.any()


def test_probe_groups_reproduces_truth_answers():
    truth = make_truth()
    links = [(0, 1), (2, 3), (4, 5)]
    probed = probe_groups(truth, links, max_group_size=2)
    for a in links:
        for b in links:
            if a < b:
                assert probed.compatible([a, b]) == truth.compatible([a, b])
    # specifically: link (4,5) jams (0,1)
    assert not probed.compatible([(0, 1), (4, 5)])
    assert probed.compatible([(0, 1), (2, 3)])


def test_unprobed_groups_conservatively_incompatible():
    probed = probe_groups(make_truth(), [(0, 1)], max_group_size=2)
    assert not probed.compatible([(2, 3)])  # never probed
    assert isinstance(probed, GroupTableOracle)


def test_probe_skips_node_sharing_groups():
    truth = make_truth()
    probed = probe_groups(truth, [(0, 1), (1, 3)], max_group_size=2)
    # the (0,1)+(1,3) group shares node 1: never probed, never compatible
    assert not probed.compatible([(0, 1), (1, 3)])


def test_probe_cost_counts():
    # sum_{k=1..2} C(10, k) = 10 + 45
    assert probe_cost(10, 2) == 55
    assert probe_cost(10, 1) == 10
    assert probe_cost(0, 3) == 0
    with pytest.raises(ValueError):
        probe_cost(-1, 2)
    with pytest.raises(ValueError):
        probe_cost(5, 0)


def test_probe_cost_sector_argument():
    """Sec. IV: probing 8 sectors of 10 links each is far cheaper than one
    cluster of 80 links."""
    whole = probe_cost(80, 3)
    sectored = 8 * probe_cost(10, 3)
    assert sectored < whole / 50


def test_probing_a_geometric_truth_matches_direct_oracle():
    """Probing the physical channel rebuilds exactly its answers on the
    probed link set (Sec. V-E end-to-end)."""
    dep = uniform_square(8, seed=2)
    geo = Cluster.from_deployment(dep)
    truth, cluster = geometric_oracle(geo)
    links = [(s, HEAD) for s in cluster.first_level_sensors()][:4]
    probed = probe_groups(truth, links, max_group_size=2)
    for a in links:
        for b in links:
            if a < b:
                assert probed.compatible([a, b]) == truth.compatible([a, b])
