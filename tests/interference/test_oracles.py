"""Tests for compatibility oracles: base semantics, protocol, physical."""

import numpy as np
import pytest

from repro.interference import (
    PhysicalModelOracle,
    ProtocolModelOracle,
    TabulatedOracle,
    group_nodes_distinct,
    power_matrix_from_positions,
)
from repro.mac.base import GROUND_SENSOR_PROPAGATION
from repro.topology import HEAD, Cluster, line


# --- base semantics -------------------------------------------------------------

def test_group_nodes_distinct():
    assert group_nodes_distinct([(0, 1), (2, 3)])
    assert not group_nodes_distinct([(0, 1), (1, 2)])  # node 1 reused
    assert not group_nodes_distinct([(0, 1), (2, 0)])
    assert not group_nodes_distinct([(0, 0)])  # self-link


def test_oracle_rejects_oversized_groups():
    oracle = TabulatedOracle([], max_group_size=2)
    with pytest.raises(ValueError):
        oracle.compatible([(0, 1), (2, 3), (4, 5)])


def test_empty_group_is_compatible():
    assert TabulatedOracle([]).compatible([])


def test_node_reuse_is_always_incompatible():
    oracle = TabulatedOracle([((0, 1), (1, 2))])  # even if tabulated!
    assert not oracle.compatible([(0, 1), (1, 2)])


def test_memoization_counts_queries_once():
    oracle = TabulatedOracle([((0, 1), (2, 3))])
    assert oracle.compatible([(0, 1), (2, 3)])
    count = oracle.query_count
    for _ in range(5):
        oracle.compatible([(2, 3), (0, 1)])  # same group, any order
    assert oracle.query_count == count


def test_tabulated_pairs_unordered():
    oracle = TabulatedOracle([((0, 1), (2, 3))])
    assert oracle.compatible([(0, 1), (2, 3)])
    assert oracle.compatible([(2, 3), (0, 1)])
    assert not oracle.compatible([(0, 1), (3, 2)])  # direction matters in links


def test_tabulated_valid_links_gate_singles():
    oracle = TabulatedOracle([], valid_links=[(0, 1)])
    assert oracle.compatible([(0, 1)])
    assert not oracle.compatible([(1, 0)])


# --- protocol model ---------------------------------------------------------------

def make_geo_cluster(positions, head, rng):
    import numpy as np

    from repro.topology import Deployment, Cluster

    dep = Deployment(
        head_position=np.array(head, dtype=float),
        positions=np.array(positions, dtype=float),
        comm_range=rng,
        side=200.0,
    )
    return Cluster.from_deployment(dep)


def test_protocol_model_guard_zone():
    # 0 at (0,0), 1 at (8,0) within range 10; 2 far away at (100,0), 3 at (108,0)
    cluster = make_geo_cluster(
        [[0, 0], [8, 0], [100, 0], [108, 0]], head=[50, 0], rng=10.0
    )
    oracle = ProtocolModelOracle(cluster, delta=0.5)
    # far pair does not disturb the near pair: senders > (1.5 * 10) from receivers
    assert oracle.compatible([(0, 1), (2, 3)])
    # a sender 9 m from another receiver violates the guard zone
    cluster2 = make_geo_cluster(
        [[0, 0], [8, 0], [17, 0], [25, 0]], head=[100, 0], rng=10.0
    )
    oracle2 = ProtocolModelOracle(cluster2, delta=0.5)
    assert not oracle2.compatible([(0, 1), (2, 3)])


def test_protocol_model_out_of_range_link_fails_alone():
    cluster = make_geo_cluster([[0, 0], [50, 0]], head=[10, 0], rng=10.0)
    oracle = ProtocolModelOracle(cluster)
    assert not oracle.compatible([(1, 0)])


def test_protocol_model_needs_positions(fig2_cluster):
    with pytest.raises(ValueError):
        ProtocolModelOracle(fig2_cluster)


# --- physical (additive SINR) model -------------------------------------------------

def test_physical_model_single_link_threshold():
    power = np.zeros((3, 3))
    power[1, 0] = 1e-9  # node 1 hears node 0
    oracle = PhysicalModelOracle(power, beta=10.0, noise=1e-11)
    assert oracle.compatible([(0, 1)])
    power2 = np.zeros((3, 3))
    power2[1, 0] = 5e-11  # below beta * noise
    assert not PhysicalModelOracle(power2, beta=10.0, noise=1e-11).compatible([(0, 1)])


def test_physical_model_accumulation_fig3():
    """Fig. 3: pairwise-compatible transmissions whose SUM breaks a receiver."""
    n = 6  # links: 0->1, 2->3, 4->5
    power = np.zeros((n + 1, n + 1))
    power[1, 0] = power[3, 2] = power[5, 4] = 1.0
    # each foreign sender puts 0.06 at receiver 3: alone fine (SINR 16),
    # together 0.12 -> SINR 8.3 < 10.
    power[3, 0] = power[3, 4] = 0.06
    oracle = PhysicalModelOracle(power, beta=10.0, noise=1e-6, max_group_size=3)
    assert oracle.compatible([(0, 1), (2, 3)])
    assert oracle.compatible([(4, 5), (2, 3)])
    assert oracle.compatible([(0, 1), (4, 5)])
    assert not oracle.compatible([(0, 1), (2, 3), (4, 5)])  # accumulation!


def test_physical_model_sinr_diagnostic():
    power = np.zeros((4, 4))
    power[1, 0] = 1.0
    power[1, 2] = 0.05
    oracle = PhysicalModelOracle(power, beta=10.0, noise=1e-6)
    alone = oracle.sinr((0, 1))
    with_interference = oracle.sinr((0, 1), concurrent=[(2, 0)])
    assert alone > with_interference
    assert with_interference == pytest.approx(1.0 / (1e-6 + 0.05))


def test_physical_model_validation():
    with pytest.raises(ValueError):
        PhysicalModelOracle(np.zeros((2, 3)))
    with pytest.raises(ValueError):
        PhysicalModelOracle(-np.ones((3, 3)))
    with pytest.raises(ValueError):
        PhysicalModelOracle(np.zeros((3, 3)), beta=0.0)
    with pytest.raises(ValueError):
        PhysicalModelOracle(np.zeros((3, 3)), noise=0.0)


def test_power_matrix_from_positions_head_row():
    cluster = Cluster.from_deployment(line(2, spacing=10.0))
    power = power_matrix_from_positions(cluster, 1e-3, GROUND_SENSOR_PROPAGATION)
    assert power.shape == (3, 3)
    assert (np.diagonal(power) == 0).all()
    # closer pair sees more power: head (index 2) is 10m from s0, 20m from s1
    assert power[2, 0] > power[2, 1]
    # symmetric distances, equal tx powers -> symmetric matrix
    assert np.allclose(power, power.T)
