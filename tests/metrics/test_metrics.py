"""Tests for the measurement layer: active time, lifetime, throughput, energy."""

import numpy as np
import pytest

from repro.metrics import (
    ActiveTimeConfig,
    EnergyRateModel,
    ThroughputWindow,
    delivery_ratio,
    energy_report,
    evaluate_lifetime_ratio,
    simulate_active_time,
    throughput_bps,
)


# --- active time (Fig 7a engine) ---------------------------------------------------

def fast_cfg(**kw):
    base = dict(n_sensors=10, rate_bps=20.0, n_cycles=6, warmup_cycles=1, seed=0)
    base.update(kw)
    return ActiveTimeConfig(**base)


def test_active_time_monotone_in_rate():
    low = simulate_active_time(fast_cfg(rate_bps=20.0)).active_fraction
    high = simulate_active_time(fast_cfg(rate_bps=80.0)).active_fraction
    assert 0 < low < high <= 1.0


def test_active_time_monotone_in_size():
    small = simulate_active_time(fast_cfg(n_sensors=10)).active_fraction
    big = simulate_active_time(fast_cfg(n_sensors=30)).active_fraction
    assert small < big


def test_saturation_at_extreme_load():
    # Just past the knee: duty exceeds the cycle, periods stretch, the
    # cluster never catches up.  (Far past the knee the backlog compounds
    # geometrically and the run takes unbounded time — by design, so keep
    # the overload mild and the horizon short.)
    res = simulate_active_time(
        fast_cfg(n_sensors=5, rate_bps=2000.0, cycle_length=2.0, n_cycles=5)
    )
    assert res.saturated
    assert res.active_fraction > 0.95


def test_cycles_recorded_with_periods():
    res = simulate_active_time(fast_cfg())
    assert len(res.cycles) == 6
    for rec in res.cycles:
        assert rec.period >= res.config.cycle_length
        assert rec.duty_time > 0


def test_loss_increases_active_time():
    clean = simulate_active_time(fast_cfg(seed=2)).active_fraction
    lossy = simulate_active_time(fast_cfg(seed=2, loss_rate=0.3)).active_fraction
    assert lossy > clean


def test_active_time_deterministic():
    a = simulate_active_time(fast_cfg(seed=5)).active_fraction
    b = simulate_active_time(fast_cfg(seed=5)).active_fraction
    assert a == b


# --- lifetime (Fig 7c engine) ----------------------------------------------------------

def test_lifetime_ratio_above_one_and_grows():
    small = evaluate_lifetime_ratio(n_sensors=12, seed=1)
    large = evaluate_lifetime_ratio(n_sensors=36, seed=1)
    assert small.lifetime_ratio > 0.95
    assert large.lifetime_ratio > small.lifetime_ratio
    assert large.lifetime_ratio > 1.2


def test_lifetime_components_consistent():
    res = evaluate_lifetime_ratio(n_sensors=20, seed=0)
    assert res.max_rate_unsectored > res.max_rate_sectored > 0
    assert res.unsectored_polling_slots >= max(res.sector_polling_slots)
    assert res.n_sectors == len(res.sector_polling_slots)


def test_energy_rate_model_grounding():
    m = EnergyRateModel()
    assert m.c1 > 0 and m.c2 > 0
    # idle-per-slot dwarfs tx-extra-per-packet (the paper's idle-listening point)
    assert m.c2 > m.c1
    assert m.rate(load=2, awake_slots=10) > m.rate(load=2, awake_slots=5)
    assert m.rate(load=5, awake_slots=10) > m.rate(load=2, awake_slots=10)
    assert m.rate(2, 10, wake_events=2) > m.rate(2, 10, wake_events=1)
    assert m.lifetime_cycles(2, 10) == pytest.approx(
        m.energy.battery_j / m.rate(2, 10)
    )


# --- throughput helpers --------------------------------------------------------------------

def test_throughput_bps():
    assert throughput_bps(100, 80, 10.0) == 800.0
    with pytest.raises(ValueError):
        throughput_bps(100, 80, 0.0)
    with pytest.raises(ValueError):
        throughput_bps(-1, 80, 1.0)


def test_delivery_ratio():
    assert delivery_ratio(5, 10) == 0.5
    assert delivery_ratio(0, 0) == 1.0
    with pytest.raises(ValueError):
        delivery_ratio(-1, 2)


def test_throughput_window():
    w = ThroughputWindow(start=10.0, end=20.0, packet_bytes=80)
    assert w.record(created_at=12.0, delivered_at=13.0)
    assert not w.record(created_at=5.0, delivered_at=12.0)  # pre-warmup
    assert w.delivered == 1
    assert w.bps == pytest.approx(8.0)


# --- energy report -----------------------------------------------------------------------

def test_energy_report_from_simulation():
    from repro.net import PollingSimConfig, run_polling_simulation

    res = run_polling_simulation(
        PollingSimConfig(n_sensors=6, rate_bps=20.0, cycle_length=4.0, n_cycles=3, seed=1)
    )
    report = energy_report(res.phy)
    assert report.consumed_j.shape == (6,)
    assert (report.consumed_j > 0).all()
    assert report.head_consumed_j > 0
    # dwell times account for the whole run
    total_time = report.active_s + report.sleep_s
    assert np.allclose(total_time, res.elapsed, rtol=1e-6)
    assert 0 < report.mean_active_fraction < 1
    table = report.per_sensor_table()
    assert len(table) == 6 and table[0]["sensor"] == 0


def test_cycles_to_first_death_sectored_wins():
    from repro.mac.base import geometric_oracle
    from repro.metrics.lifetime import cycles_to_first_death
    from repro.topology import Cluster, uniform_square

    dep = uniform_square(20, seed=1)
    oracle, cluster = geometric_oracle(Cluster.from_deployment(dep))
    plain_cycles, _ = cycles_to_first_death(cluster, oracle, sectored=False)
    sect_cycles, _ = cycles_to_first_death(cluster, oracle, sectored=True)
    assert sect_cycles > plain_cycles
    assert plain_cycles > 0
