"""Chaos and mutation tests for the runtime invariant monitor.

Two complementary directions (DESIGN.md §8):

* **Chaos**: random fault plans through the full DES stack in ``strict``
  mode must produce *zero* violations — fault recovery is allowed to lose
  packets, never to break conservation, scheduling, or energy accounting.
* **Mutation**: deliberately corrupt each checked artifact (schedules,
  polling outcomes, flow solutions, energy reports, the kernel clock) and
  assert the matching invariant class fires.  This is what keeps the checks
  themselves honest — a checker nothing can trip is dead code.
"""

import warnings
from contextlib import contextmanager

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro import validate
from repro.core import OnlinePollingScheduler
from repro.core.schedule import PollingSchedule
from repro.core.transmissions import Transmission
from repro.faults.plan import BurstyLinks, FaultPlan, NodeCrash, TransientStun
from repro.mac.base import geometric_oracle
from repro.metrics.energy import EnergyReport
from repro.net.cluster_sim import PollingSimConfig, run_polling_simulation
from repro.radio.packet import Frame, FrameType
from repro.routing import solve_min_max_load
from repro.routing.maxflow import FlowNetwork
from repro.sim import SimulationError, Simulator
from repro.topology import HEAD, Cluster, uniform_square
from repro.validate import (
    InvariantError,
    InvariantMonitor,
    InvariantWarning,
)


@contextmanager
def quiet():
    """Silence InvariantWarning noise while mutation tests trip checks."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", InvariantWarning)
        yield


def fired(monitor: InvariantMonitor, invariant: str) -> list:
    return [v for v in monitor.violations if v.invariant == invariant]


# ------------------------------------------------------------------- monitor


def test_modes_are_validated():
    with pytest.raises(ValueError, match="mode"):
        InvariantMonitor(mode="chatty")
    mon = InvariantMonitor(mode="warn")
    with pytest.raises(ValueError, match="mode"):
        mon.mode = "loud"


def test_off_mode_records_nothing():
    mon = InvariantMonitor(mode="off")
    assert mon.record("test.x", "ignored") is None
    assert mon.violations == []
    assert not mon.enabled


def test_warn_mode_records_and_warns():
    mon = InvariantMonitor(mode="warn")
    with pytest.warns(InvariantWarning, match="test.x"):
        v = mon.record("test.x", "boom", sim_time=1.5, nodes=(3,), hint="seed=7")
    assert v is not None and mon.violations == [v]
    assert "t=1.5" in str(v) and "seed=7" in str(v)


def test_strict_mode_raises_with_violation_attached():
    mon = InvariantMonitor(mode="strict")
    with pytest.raises(InvariantError) as excinfo:
        mon.record("test.x", "boom")
    assert excinfo.value.violation.invariant == "test.x"
    assert mon.violations  # recorded before raising


def test_scoped_modes_nest_and_restore():
    mon = InvariantMonitor(mode="warn")
    with mon.at_mode("off"):
        assert not mon.enabled
        with mon.at_mode("strict"):
            assert mon.mode == "strict"
        assert mon.mode == "off"
    assert mon.mode == "warn"


# ------------------------------------------------------ chaos (property-based)


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(0, 1_000),
    crash=st.one_of(
        st.none(),
        st.tuples(
            st.integers(0, 9), st.floats(2.0, 25.0, allow_nan=False)
        ),
    ),
    stun=st.one_of(
        st.none(),
        st.tuples(
            st.integers(0, 9),
            st.floats(1.0, 20.0, allow_nan=False),
            st.floats(0.5, 8.0, allow_nan=False),
        ),
    ),
    bursty=st.booleans(),
)
def test_chaos_random_fault_plans_pass_strict(seed, crash, stun, bursty):
    """Any random fault plan, run end to end in strict mode: the stack may
    lose packets but must never violate an invariant."""
    plan = FaultPlan(
        crashes=[NodeCrash(node=crash[0], at=crash[1])] if crash else [],
        stuns=[TransientStun(node=stun[0], at=stun[1], duration=stun[2])]
        if stun
        else [],
        bursty_links=BurstyLinks() if bursty else None,
    )
    config = PollingSimConfig(n_sensors=10, n_cycles=3, seed=seed, fault_plan=plan)
    with validate.strict():
        try:
            result = run_polling_simulation(config)  # raises InvariantError on breach
        except RuntimeError as exc:
            if "connected deployment" in str(exc):
                # An unlucky geometry seed (10 sensors are sparse in 200x200 m
                # at 55 m range) is a rejected sample, not an invariant breach.
                assume(False)
            raise
    assert result.violations == []


def test_fault_free_run_is_clean_in_strict_mode():
    with validate.strict():
        result = run_polling_simulation(PollingSimConfig(n_sensors=12, n_cycles=2))
    assert result.violations == []


# ------------------------------------------------- mutation: schedule checks


class _NothingCompatible:
    max_group_size = 2

    def compatible(self, links):
        return len(links) <= 1


def test_mutated_schedule_group_size_fires():
    oracle = _NothingCompatible()
    sched = PollingSchedule()
    for i, req in enumerate([(0, 1), (2, 3), (4, 5)]):
        sched.add(0, Transmission(sender=req[0], receiver=req[1], request_id=i, hop_index=0))
    mon = InvariantMonitor(mode="warn")
    with quiet():
        assert validate.check_schedule(sched, oracle, monitor=mon) > 0
    assert fired(mon, "schedule.group-size")


def test_mutated_schedule_node_reuse_fires():
    oracle = _NothingCompatible()
    sched = PollingSchedule()
    sched.add(0, Transmission(sender=0, receiver=1, request_id=0, hop_index=0))
    sched.add(0, Transmission(sender=1, receiver=2, request_id=1, hop_index=0))
    mon = InvariantMonitor(mode="warn")
    with quiet():
        validate.check_schedule(sched, oracle, monitor=mon)
    assert fired(mon, "schedule.node-reuse")


def test_mutated_schedule_incompatible_group_fires():
    oracle = _NothingCompatible()  # rejects any 2-group -> disjoint pair trips it
    sched = PollingSchedule()
    sched.add(0, Transmission(sender=0, receiver=HEAD, request_id=0, hop_index=0))
    sched.add(0, Transmission(sender=2, receiver=1, request_id=1, hop_index=0))
    mon = InvariantMonitor(mode="warn")
    with quiet():
        validate.check_schedule(sched, oracle, monitor=mon)
    assert fired(mon, "schedule.incompatible-group")
    assert not fired(mon, "schedule.node-reuse")


def test_healthy_schedule_is_silent():
    scheduler = _run_small_polling()
    mon = InvariantMonitor(mode="warn")
    assert validate.check_schedule(scheduler.schedule, scheduler.oracle, monitor=mon) == 0
    assert mon.violations == []


# ------------------------------------------ mutation: polling conservation


def _run_small_polling() -> OnlinePollingScheduler:
    dep = uniform_square(8, seed=0)
    cluster = Cluster.from_deployment(dep)
    oracle, cluster = geometric_oracle(cluster)
    plan = solve_min_max_load(cluster).routing_plan()
    scheduler = OnlinePollingScheduler(plan, oracle)
    scheduler.run()
    return scheduler


def test_dropped_delivery_fires_conservation():
    scheduler = _run_small_polling()
    assert scheduler.schedule.delivered  # sanity: something to corrupt
    scheduler.schedule.delivered.pop(next(iter(scheduler.schedule.delivered)))
    mon = InvariantMonitor(mode="warn")
    with quiet():
        assert validate.check_polling_outcome(scheduler, monitor=mon) > 0
    assert fired(mon, "polling.conservation")


def test_double_accounting_fires():
    scheduler = _run_small_polling()
    some_id = next(iter(scheduler.schedule.delivered))
    scheduler.failed.add(some_id)
    mon = InvariantMonitor(mode="warn")
    with quiet():
        validate.check_polling_outcome(scheduler, monitor=mon)
    assert fired(mon, "polling.double-account")


def test_phantom_request_fires_conservation():
    scheduler = _run_small_polling()
    scheduler.schedule.delivered[99_999] = 0
    mon = InvariantMonitor(mode="warn")
    with quiet():
        validate.check_polling_outcome(scheduler, monitor=mon)
    assert fired(mon, "polling.conservation")


def test_blacklisted_with_pending_requests_fires():
    scheduler = _run_small_polling()
    req = next(iter(scheduler.pool.requests))
    scheduler.schedule.delivered.pop(req.request_id, None)
    scheduler.failed.discard(req.request_id)
    scheduler.blacklist.add(req.sensor)
    mon = InvariantMonitor(mode="warn")
    with quiet():
        validate.check_polling_outcome(scheduler, monitor=mon)
    assert any(
        "blacklisted" in v.message for v in fired(mon, "polling.conservation")
    )


# ----------------------------------------------- mutation: flow invariants


def _solved(seed: int = 2):
    dep = uniform_square(10, seed=seed)
    rng = np.random.default_rng(seed)
    cluster = Cluster.from_deployment(dep).with_packets(rng.integers(1, 4, size=10))
    return cluster, solve_min_max_load(cluster)


def test_tampered_flow_units_fire_conservation():
    cluster, sol = _solved()
    sensor, bundles = next((s, b) for s, b in sol.flow_paths.items() if b)
    path, units = bundles[0]
    bundles[0] = (path, units + 1)
    mon = InvariantMonitor(mode="warn")
    with quiet():
        assert validate.check_flow_solution(cluster, sol, monitor=mon) > 0
    assert fired(mon, "flow.conservation")


def test_reversed_path_fires_path_invalid():
    cluster, sol = _solved()
    sensor, bundles = next((s, b) for s, b in sol.flow_paths.items() if b)
    path, units = bundles[0]
    bundles[0] = (tuple(reversed(path)), units)
    mon = InvariantMonitor(mode="warn")
    with quiet():
        validate.check_flow_solution(cluster, sol, monitor=mon)
    assert fired(mon, "flow.path-invalid")


def test_tampered_loads_fire_load_mismatch():
    cluster, sol = _solved()
    k = int(np.argmax(sol.loads))
    sol.loads[k] += 1
    mon = InvariantMonitor(mode="warn")
    with quiet():
        validate.check_flow_solution(cluster, sol, monitor=mon)
    assert fired(mon, "flow.load-mismatch")


def test_tampered_capacity_fires_capacity():
    cluster, sol = _solved()
    k = int(np.argmax(sol.loads))
    assert sol.loads[k] > 0
    sol.capacities[k] = int(sol.loads[k]) - 1
    mon = InvariantMonitor(mode="warn")
    with quiet():
        validate.check_flow_solution(cluster, sol, monitor=mon)
    assert fired(mon, "flow.capacity")


def test_depleted_routed_sensor_fires_energy():
    cluster, sol = _solved()
    k = int(np.argmax(sol.loads))
    cluster.energy[k] = 0.0
    mon = InvariantMonitor(mode="warn")
    with quiet():
        validate.check_flow_solution(cluster, sol, monitor=mon)
    assert fired(mon, "flow.energy")


def test_corrupted_network_flow_fires_capacity_and_conservation():
    net = FlowNetwork(4)
    e0 = net.add_edge(0, 2, 5)
    net.add_edge(2, 3, 5)
    net.add_edge(3, 1, 5)
    assert net.max_flow(0, 1) == 5
    mon = InvariantMonitor(mode="warn")
    assert validate.check_network_flow(net, 0, 1, monitor=mon) == 0
    net._edges[e0].flow += 1  # mutation: over-capacity + imbalance at node 2
    with quiet():
        assert validate.check_network_flow(net, 0, 1, monitor=mon) == 2
    assert fired(mon, "flow.capacity")
    assert fired(mon, "flow.conservation")


# ----------------------------------------------- mutation: energy invariants


def _report(**overrides) -> EnergyReport:
    base = dict(
        consumed_j=np.array([1.0, 2.0]),
        active_s=np.array([3.0, 4.0]),
        sleep_s=np.array([7.0, 6.0]),
        tx_s=np.array([0.5, 0.5]),
        rx_s=np.array([0.5, 0.5]),
        head_consumed_j=0.1,
    )
    base.update(overrides)
    return EnergyReport(**base)


def test_negative_consumption_fires():
    mon = InvariantMonitor(mode="warn")
    with quiet():
        validate.check_energy_report(
            _report(consumed_j=np.array([1.0, -0.25])), elapsed=10.0, monitor=mon
        )
    assert fired(mon, "energy.negative")
    assert fired(mon, "energy.negative")[0].nodes == (1,)


def test_overaccounted_dwell_fires():
    mon = InvariantMonitor(mode="warn")
    with quiet():
        validate.check_energy_report(
            _report(active_s=np.array([8.0, 4.0]), sleep_s=np.array([5.0, 6.0])),
            elapsed=10.0,
            monitor=mon,
        )
    assert fired(mon, "energy.accounting")


def test_healthy_energy_report_is_silent():
    mon = InvariantMonitor(mode="warn")
    assert validate.check_energy_report(_report(), elapsed=10.0, monitor=mon) == 0


# ---------------------------------------------- mutation: kernel + MAC wiring


def test_scheduling_in_the_past_records_and_raises_native_error():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with validate.warn(), quiet():
        mark = validate.MONITOR.mark()
        with pytest.raises(SimulationError):
            sim.at(0.5, lambda: None)
    assert any(
        v.invariant == "kernel.schedule-past" for v in validate.MONITOR.since(mark)
    )


def test_tampered_clock_fires_time_monotone():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim._now = 2.0  # mutation: clock jumped ahead of the pending event
    with validate.warn(), quiet():
        mark = validate.MONITOR.mark()
        sim.run()
    assert any(
        v.invariant == "kernel.time-monotone" for v in validate.MONITOR.since(mark)
    )


def test_transmit_while_dead_fires():
    with validate.off():
        result = run_polling_simulation(PollingSimConfig(n_sensors=6, n_cycles=1))
    agent = result.mac.sensors[0]
    agent.trx.dead = True  # mutation: kill the radio behind the MAC's back
    frame = Frame(ftype=FrameType.DATA, src=0, dst=1, size_bytes=10)
    with validate.warn(), quiet():
        mark = validate.MONITOR.mark()
        agent._transmit_if_possible(frame)
    recorded = validate.MONITOR.since(mark)
    assert any(v.invariant == "mac.transmit-while-dead" for v in recorded)
    assert any(v.nodes == (0,) for v in recorded)


def test_sim_result_surfaces_violations_in_warn_mode():
    """PollingSimResult.violations carries what the monitor saw during the
    run (empty here: healthy run), scoped to that run only."""
    with validate.warn():
        validate.MONITOR.record  # touch: process-wide monitor in play
        result = run_polling_simulation(PollingSimConfig(n_sensors=8, n_cycles=1))
    assert result.violations == []
