"""Tracer edge cases: reuse across runs, unsubscribe, retention bounds.

Regression coverage for the cross-trial reuse hazard documented in
:mod:`repro.sim.trace`: per-run counters must not leak from one trial into
the next, subscribers must be removable (even from inside a dispatch), and
``keep_records`` must be boundable for soak runs.
"""

import pytest

import repro.sim.trace as trace_mod
from repro.sim import Tracer


def test_reuse_without_reset_accumulates_the_documented_hazard():
    t = Tracer()
    t.emit(0.0, "rx_ok")
    t.emit(1.0, "rx_ok")
    # Second "run" without clearing: counts silently carry over.
    t.emit(0.0, "rx_ok")
    assert t.counts["rx_ok"] == 3


def test_run_scope_resets_per_run_state_but_keeps_subscribers():
    t = Tracer(keep_records=True)
    seen = []
    t.subscribe("rx_ok", seen.append)
    with t.run_scope():
        t.emit(0.0, "rx_ok")
    assert t.counts["rx_ok"] == 1  # readable after exit
    with t.run_scope():
        assert t.counts["rx_ok"] == 0  # reset on entry, not exit
        assert t.records == []
        t.emit(0.0, "rx_ok")
        t.emit(1.0, "rx_ok")
    assert t.counts["rx_ok"] == 2
    assert len(seen) == 3  # subscriber survived both scopes


def test_unsubscribe_removes_and_restores_fast_path(monkeypatch):
    t = Tracer()
    fn = lambda rec: None  # noqa: E731
    t.subscribe("rx_ok", fn)
    t.unsubscribe("rx_ok", fn)
    # The empty list must be dropped so emit takes the no-record fast path.
    assert "rx_ok" not in t._subs
    monkeypatch.setattr(
        trace_mod,
        "TraceRecord",
        lambda *a, **k: pytest.fail("fast path must not allocate a record"),
    )
    t.emit(0.0, "rx_ok")
    assert t.counts["rx_ok"] == 1


def test_unsubscribe_wildcard_and_missing():
    t = Tracer()
    fn = lambda rec: None  # noqa: E731
    t.subscribe("*", fn)
    t.unsubscribe("*", fn)
    with pytest.raises(ValueError):
        t.unsubscribe("rx_ok", fn)


def test_unsubscribe_during_dispatch_is_safe():
    t = Tracer()
    calls = []

    def self_removing(rec):
        calls.append("a")
        t.unsubscribe("evt", self_removing)

    def sibling(rec):
        calls.append("b")

    t.subscribe("evt", self_removing)
    t.subscribe("evt", sibling)
    t.emit(0.0, "evt")
    # The in-flight dispatch iterates a snapshot: the sibling still fires.
    assert calls == ["a", "b"]
    t.emit(1.0, "evt")
    assert calls == ["a", "b", "b"]


def test_emit_with_no_subscribers_allocates_no_record(monkeypatch):
    t = Tracer()
    monkeypatch.setattr(
        trace_mod,
        "TraceRecord",
        lambda *a, **k: pytest.fail("no-subscriber emit must not allocate"),
    )
    t.emit(0.0, "rx_ok", node=3, size=80)
    assert t.counts["rx_ok"] == 1
    assert t.records == []


def test_max_records_keeps_a_sliding_window():
    t = Tracer(keep_records=True, max_records=3)
    for i in range(10):
        t.emit(float(i), "rx_ok", node=i)
    assert len(t.records) == 3
    assert [r.time for r in t.records] == [7.0, 8.0, 9.0]  # oldest dropped
    assert t.counts["rx_ok"] == 10  # counters see everything


def test_max_records_requires_positive():
    with pytest.raises(ValueError):
        Tracer(keep_records=True, max_records=0)


def test_max_records_none_retains_everything():
    t = Tracer(keep_records=True)
    for i in range(100):
        t.emit(float(i), "rx_ok")
    assert len(t.records) == 100


def test_tracer_reused_across_multicluster_trials_does_not_leak_counts():
    """Regression: one tracer handed to consecutive runs must report each
    run's counts from zero (run_scope resets on entry), with subscribers
    surviving across the trials."""
    from repro.net import MultiClusterConfig, run_multicluster_simulation

    cfg = MultiClusterConfig(
        n_sensors=20, n_heads=2, n_cycles=2, seed=4, cycle_length=5.0,
        field_m=260.0,
    )
    t = Tracer()
    seen = []
    t.subscribe("phy_rx_ok", seen.append)
    run_multicluster_simulation(cfg, tracer=t)
    first = dict(t.counts)
    first_seen = len(seen)
    assert first and first_seen > 0
    run_multicluster_simulation(cfg, tracer=t)
    # Same seed, same config: the second run must reproduce the first's
    # counts exactly instead of doubling them.
    assert dict(t.counts) == first
    assert len(seen) == 2 * first_seen  # the subscriber saw both runs
