"""Tests for seeded RNG streams, the tracer, and unit helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.sim import RngStreams, Tracer, derive_seed
from repro.sim.rng import FAULT_STREAM, fault_rng
from repro.sim.units import (
    DEFAULT_NOISE_FLOOR_W,
    bytes_to_bits,
    dbm_to_watts,
    transmission_time,
    watts_to_dbm,
)


# --- rng ----------------------------------------------------------------------

def test_same_stream_name_returns_same_generator():
    streams = RngStreams(1)
    assert streams.get("x") is streams.get("x")


def test_streams_with_same_seed_reproduce():
    a = RngStreams(99).get("traffic").random(10)
    b = RngStreams(99).get("traffic").random(10)
    assert (a == b).all()


def test_different_names_give_different_sequences():
    streams = RngStreams(0)
    a = streams.get("a").random(8)
    b = streams.get("b").random(8)
    assert not (a == b).all()


def test_fork_is_independent_of_parent_consumption():
    parent1 = RngStreams(7)
    parent1.get("main").random(100)  # consume a lot
    child1 = parent1.fork("w").get("s").random(5)
    child2 = RngStreams(7).fork("w").get("s").random(5)
    assert (child1 == child2).all()


@given(st.integers(0, 2**31), st.text(max_size=20), st.text(max_size=20))
def test_derive_seed_deterministic_and_in_range(base, a, b):
    s1 = derive_seed(base, a, b)
    s2 = derive_seed(base, a, b)
    assert s1 == s2
    assert 0 <= s1 < 2**63


def test_derive_seed_order_sensitive():
    assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")


# --- fault stream -------------------------------------------------------------


def test_fault_stream_is_independent_of_other_streams():
    # Draining the deployment/traffic streams must not shift the fault
    # stream (and vice versa): adding a FaultPlan cannot perturb where
    # sensors land or when packets arrive.
    streams = RngStreams(42)
    streams.get("deployment").random(1000)
    streams.get("traffic").random(1000)
    a = streams.faults("link", 3, 7).random(8)
    b = RngStreams(42).faults("link", 3, 7).random(8)
    assert (a == b).all()


def test_fault_rng_matches_streams_faults():
    a = fault_rng(42, "link", 3, 7).random(8)
    b = RngStreams(42).faults("link", 3, 7).random(8)
    assert (a == b).all()


def test_fault_rng_distinct_per_name():
    a = fault_rng(0, "link", 0, 1).random(8)
    b = fault_rng(0, "link", 1, 0).random(8)
    assert not (a == b).all()


def test_fault_stream_does_not_collide_with_plain_stream():
    # A user stream literally named "faults/link/0/1" is the same key by
    # construction — document that the prefix is the namespace; distinct
    # base names stay distinct.
    a = fault_rng(5, "x").random(4)
    b = RngStreams(5).get("x").random(4)
    assert not (a == b).all()
    assert FAULT_STREAM == "faults"


# --- tracer -------------------------------------------------------------------

def test_tracer_counts_without_subscribers():
    t = Tracer()
    t.emit(0.0, "rx_ok", node=1)
    t.emit(1.0, "rx_ok", node=2)
    assert t.counts["rx_ok"] == 2
    assert t.records == []  # not retained by default


def test_tracer_dispatch_and_wildcard():
    t = Tracer()
    specific, everything = [], []
    t.subscribe("tx", specific.append)
    t.subscribe("*", everything.append)
    t.emit(0.0, "tx", node=1, size=80)
    t.emit(0.5, "rx", node=2)
    assert len(specific) == 1 and specific[0].detail["size"] == 80
    assert len(everything) == 2


def test_tracer_retention_and_reset():
    t = Tracer(keep_records=True)
    t.emit(0.0, "a")
    t.emit(1.0, "b")
    assert [r.kind for r in t.records_of("a")] == ["a"]
    t.reset()
    assert t.counts == {} and t.records == []


# --- units --------------------------------------------------------------------

def test_80_byte_packet_at_200kbps_is_3_2_ms():
    assert transmission_time(80, 200_000.0) == pytest.approx(3.2e-3)


def test_bytes_to_bits():
    assert bytes_to_bits(10) == 80


def test_transmission_time_validation():
    with pytest.raises(ValueError):
        transmission_time(-1, 200_000.0)
    with pytest.raises(ValueError):
        transmission_time(80, 0.0)


def test_dbm_round_trip():
    for dbm in (-101.0, -30.0, 0.0, 20.0):
        assert watts_to_dbm(dbm_to_watts(dbm)) == pytest.approx(dbm)


def test_noise_floor_matches_minus_101_dbm():
    assert watts_to_dbm(DEFAULT_NOISE_FLOOR_W) == pytest.approx(-101.0)


def test_watts_to_dbm_rejects_nonpositive():
    with pytest.raises(ValueError):
        watts_to_dbm(0.0)
