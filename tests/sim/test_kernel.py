"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import SimulationError, Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    out = []
    sim.schedule(2.0, out.append, "late")
    sim.schedule(1.0, out.append, "early")
    sim.schedule(3.0, out.append, "latest")
    sim.run()
    assert out == ["early", "late", "latest"]


def test_equal_time_events_fire_fifo():
    sim = Simulator()
    out = []
    for i in range(10):
        sim.schedule(1.0, out.append, i)
    sim.run()
    assert out == list(range(10))


def test_now_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(5.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [5.0]
    assert sim.now == 5.0


def test_run_until_stops_clock_at_until():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.schedule(10.0, lambda: None)
    sim.run(until=5.0)
    assert sim.now == 5.0
    assert sim.pending_count == 1  # the t=10 event survives


def test_run_until_advances_clock_even_when_heap_drains():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run(until=7.5)
    assert sim.now == 7.5


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    out = []

    def first():
        sim.schedule(1.0, out.append, "second")
        out.append("first")

    sim.schedule(1.0, first)
    sim.run()
    assert out == ["first", "second"]


def test_cancel_prevents_firing():
    sim = Simulator()
    out = []
    handle = sim.schedule(1.0, out.append, "cancelled")
    sim.schedule(2.0, out.append, "kept")
    handle.cancel()
    sim.run()
    assert out == ["kept"]
    assert handle.cancelled and not handle.fired


def test_cancel_is_idempotent_and_safe_after_fire():
    sim = Simulator()
    handle = sim.schedule(0.5, lambda: None)
    sim.run()
    assert handle.fired
    handle.cancel()  # no error
    assert not handle.pending


def test_scheduling_in_the_past_raises():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(0.5, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_stop_halts_processing():
    sim = Simulator()
    out = []
    sim.schedule(1.0, lambda: (out.append(1), sim.stop()))
    sim.schedule(2.0, out.append, 2)
    sim.run()
    assert out == [1]
    sim.run()  # resume
    assert out == [1, 2]


def test_step_executes_single_event():
    sim = Simulator()
    out = []
    sim.schedule(1.0, out.append, "a")
    sim.schedule(2.0, out.append, "b")
    assert sim.step() is True
    assert out == ["a"]
    assert sim.step() is True
    assert sim.step() is False
    assert out == ["a", "b"]


def test_peek_time_skips_cancelled():
    sim = Simulator()
    h = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    h.cancel()
    assert sim.peek_time() == 3.0 or sim.peek_time() == 2.0
    assert sim.peek_time() == 2.0


def test_reentrant_run_rejected():
    sim = Simulator()

    def recurse():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule(1.0, recurse)
    sim.run()


def test_events_processed_counter():
    sim = Simulator()
    for _ in range(5):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_processed == 5


def test_zero_delay_event_fires_at_current_time():
    sim = Simulator(start_time=3.0)
    seen = []
    sim.schedule(0.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [3.0]


def test_random_schedules_fire_sorted():
    from hypothesis import given, settings, strategies as st

    @given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def run(delays):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.schedule(d, lambda d=d: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    run()


def test_interleaved_schedule_and_cancel():
    from hypothesis import given, settings, strategies as st

    @given(st.lists(st.tuples(st.floats(0.0, 10.0), st.booleans()), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def run(entries):
        sim = Simulator()
        fired = []
        handles = []
        for d, cancel in entries:
            handles.append((sim.schedule(d, lambda d=d: fired.append(d)), cancel))
        for h, cancel in handles:
            if cancel:
                h.cancel()
        sim.run()
        expected = sorted(d for (d, cancel) in entries if not cancel)
        assert sorted(fired) == expected

    run()
