"""Tests for the generator-process layer (timeouts, signals, composition)."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Interrupted,
    Process,
    ProcessError,
    Signal,
    Simulator,
    Timeout,
    spawn,
)


def test_timeout_sequencing():
    sim = Simulator()
    trace = []

    def proc():
        trace.append(("start", sim.now))
        yield Timeout(1.5)
        trace.append(("mid", sim.now))
        yield Timeout(0.5)
        trace.append(("end", sim.now))

    spawn(sim, proc())
    sim.run()
    assert trace == [("start", 0.0), ("mid", 1.5), ("end", 2.0)]


def test_process_return_value_and_done_signal():
    sim = Simulator()

    def worker():
        yield Timeout(1.0)
        return 42

    p = spawn(sim, worker())
    results = []
    p.done_signal._subscribe(results.append)
    sim.run()
    assert p.value == 42 and not p.alive
    assert results == [42]


def test_signal_wakes_all_waiters_with_value():
    sim = Simulator()
    sig = Signal("data")
    got = []

    def waiter(tag):
        value = yield sig
        got.append((tag, value, sim.now))

    spawn(sim, waiter("a"))
    spawn(sim, waiter("b"))
    sim.schedule(2.0, sig.fire, "hello")
    sim.run()
    assert sorted(got) == [("a", "hello", 2.0), ("b", "hello", 2.0)]


def test_signal_is_edge_triggered():
    sim = Simulator()
    sig = Signal()
    got = []

    def late_waiter():
        yield Timeout(5.0)  # subscribe after the fire
        value = yield sig
        got.append(value)

    spawn(sim, late_waiter())
    sim.schedule(1.0, sig.fire, "first")
    sim.schedule(10.0, sig.fire, "second")
    sim.run()
    assert got == ["second"]


def test_wait_on_other_process_receives_its_return():
    sim = Simulator()

    def child():
        yield Timeout(3.0)
        return "payload"

    def parent():
        c = spawn(sim, child())
        value = yield c
        return (value, sim.now)

    p = spawn(sim, parent())
    sim.run()
    assert p.value == ("payload", 3.0)


def test_wait_on_finished_process_resumes_immediately():
    sim = Simulator()

    def child():
        return "done"
        yield  # pragma: no cover

    def parent():
        c = spawn(sim, child())
        yield Timeout(5.0)  # child long dead by now
        value = yield c
        return (value, sim.now)

    p = spawn(sim, parent())
    sim.run()
    assert p.value == ("done", 5.0)


def test_anyof_returns_first_completion_and_cancels_rest():
    sim = Simulator()
    sig = Signal()

    def proc():
        index, value = yield AnyOf([sig, Timeout(10.0)])
        return (index, value, sim.now)

    p = spawn(sim, proc())
    sim.schedule(2.0, sig.fire, "won")
    sim.run()
    assert p.value == (0, "won", 2.0)
    assert sim.now == 2.0  # losing timeout was cancelled, clock never hit 10


def test_anyof_timeout_side():
    sim = Simulator()
    sig = Signal()

    def proc():
        index, _ = yield AnyOf([sig, Timeout(1.0)])
        return index

    p = spawn(sim, proc())
    sim.run()
    assert p.value == 1
    assert sig.waiter_count == 0  # signal subscription cleaned up


def test_allof_gathers_all_values_in_member_order():
    sim = Simulator()

    def proc():
        values = yield AllOf([Timeout(2.0), Timeout(1.0)])
        return (values, sim.now)

    p = spawn(sim, proc())
    sim.run()
    assert p.value == ([None, None], 2.0)


def test_interrupt_raises_inside_generator():
    sim = Simulator()
    caught = []

    def proc():
        try:
            yield Timeout(100.0)
        except Interrupted as exc:
            caught.append(exc.cause)
            yield Timeout(1.0)
        return "recovered"

    p = spawn(sim, proc())
    sim.schedule(2.0, p.interrupt, "busy-channel")
    sim.run()
    assert caught == ["busy-channel"]
    assert p.value == "recovered"
    assert sim.now == 3.0


def test_unhandled_interrupt_terminates_process():
    sim = Simulator()

    def proc():
        yield Timeout(100.0)

    p = spawn(sim, proc())
    sim.schedule(1.0, p.interrupt)
    sim.run()
    assert not p.alive and p.value is None


def test_stop_kills_without_raising():
    sim = Simulator()
    progressed = []

    def proc():
        yield Timeout(10.0)
        progressed.append(True)

    p = spawn(sim, proc())
    sim.schedule(1.0, p.stop)
    sim.run()
    assert not p.alive and not progressed


def test_yielding_garbage_raises_process_error():
    sim = Simulator()

    def proc():
        yield "not a condition"

    spawn(sim, proc())
    with pytest.raises(ProcessError):
        sim.run()


def test_negative_timeout_rejected():
    with pytest.raises(ValueError):
        Timeout(-1.0)


def test_empty_composites_rejected():
    with pytest.raises(ValueError):
        AnyOf([])
    with pytest.raises(ValueError):
        AllOf([])


def test_nested_composites():
    sim = Simulator()
    sig = Signal()

    def proc():
        result = yield AllOf([Timeout(1.0), AnyOf([sig, Timeout(2.0)])])
        return (result[1], sim.now)

    p = spawn(sim, proc())
    sim.run()
    assert p.value == ((1, None), 2.0)
