"""Assorted edge cases across modules (empty inputs, degenerate topologies)."""

import numpy as np
import pytest

from repro.core import (
    OnlinePollingScheduler,
    PollingSchedule,
    RequestPool,
    Sector,
    SectorPartition,
    partition_into_sectors,
)
from repro.interference import TabulatedOracle
from repro.routing import PathRotator, RoutingPlan, solve_min_max_load
from repro.topology import HEAD, Cluster

from .conftest import AllCompatibleOracle


def test_single_sensor_cluster():
    c = Cluster.from_edges(1, [], [0], packets=[3])
    sol = solve_min_max_load(c)
    assert sol.max_load == 3
    result = OnlinePollingScheduler.poll(sol.routing_plan(), AllCompatibleOracle())
    assert result.makespan == 3


def test_sensor_with_zero_packets_is_skipped():
    c = Cluster.from_edges(2, [], [0, 1], packets=[0, 2])
    plan = solve_min_max_load(c).routing_plan()
    pool = RequestPool(plan)
    assert {r.sensor for r in pool} == {1}


def test_empty_schedule_properties():
    s = PollingSchedule()
    assert s.n_slots == 0
    assert s.makespan() == 0
    assert s.transmissions_total() == 0
    assert s.concurrency_profile() == []
    assert s.last_slot_of_node(0) is None
    s.validate([], None)  # vacuously legal


def test_rotator_with_no_flow_paths():
    c = Cluster.from_edges(2, [], [0, 1], packets=[0, 0])
    sol = solve_min_max_load(c)
    rot = PathRotator(sol)
    plan = rot.next_cycle()
    assert plan.paths == {}
    assert rot.usage_counts() == {}


def test_sector_partition_empty():
    c = Cluster.from_edges(2, [], [0, 1], packets=[1, 1])
    part = SectorPartition(cluster=c, sectors=[])
    assert part.max_pseudo_rate() == 0.0
    assert part.n_sectors == 0


def test_partition_of_star_is_singletons():
    c = Cluster.from_edges(4, [], [0, 1, 2, 3], packets=[1, 1, 1, 1])
    sol = solve_min_max_load(c)
    part = partition_into_sectors(sol, oracle=AllCompatibleOracle())
    # no inter-branch links: rule 1 forbids pairing -> four singleton sectors
    assert part.n_sectors == 4
    for sec in part.sectors:
        assert sec.size == 1


def test_oracle_group_size_one_means_serial():
    c = Cluster.from_edges(3, [(0, 1)], [0, 2], packets=[0, 1, 1])
    oracle = TabulatedOracle([], valid_links=[(1, 0), (0, HEAD), (2, HEAD)], max_group_size=1)
    result = OnlinePollingScheduler.poll(
        solve_min_max_load(c).routing_plan(), oracle
    )
    assert result.makespan == 3
    assert max(result.schedule.concurrency_profile()) == 1


def test_deep_chain_max_hop_count():
    n = 8
    edges = [(i, i + 1) for i in range(n - 1)]
    c = Cluster.from_edges(n, edges, [0], packets=[0] * (n - 1) + [1])
    plan = solve_min_max_load(c).routing_plan()
    assert plan.max_hop_count() == n
    result = OnlinePollingScheduler.poll(plan, AllCompatibleOracle())
    assert result.makespan == n  # a single pipeline takes exactly its depth


def test_asymmetric_link_routing():
    # 1 -> 0 audible but 0 -> 1 not: routing must still deliver 1's packet.
    c = Cluster.from_edges(2, [(0, 1)], [0], packets=[0, 1], symmetric=False)
    # hears[0,1]: 0 hears 1 -> 1 can forward to 0.
    sol = solve_min_max_load(c)
    assert sol.flow_paths[1][0][0] == (1, 0, HEAD)


def test_schedule_describe_empty_slot():
    s = PollingSchedule()
    from repro.core import Transmission

    s.add(1, Transmission(0, HEAD, 0, 0))
    text = s.describe()
    assert "(idle)" in text  # slot 0 stayed empty


def test_cluster_one_packet_many_sensors_head_bound():
    c = Cluster.from_edges(6, [], [0, 1, 2, 3, 4, 5])
    result = OnlinePollingScheduler.poll(
        solve_min_max_load(c).routing_plan(), AllCompatibleOracle(max_group_size=3)
    )
    # all single-hop: the head is the bottleneck regardless of M
    assert result.makespan == 6


def test_tabulated_oracle_triple_groups():
    links = [(0, 1), (2, 3), (4, 5)]
    oracle = TabulatedOracle(
        [(links[0], links[1]), (links[0], links[2]), (links[1], links[2])],
        max_group_size=3,
    )
    # pairwise closure: all three pairs compatible -> the triple passes
    assert oracle.compatible(links)
    oracle2 = TabulatedOracle(
        [(links[0], links[1]), (links[0], links[2])], max_group_size=3
    )
    assert not oracle2.compatible(links)  # one missing pair breaks it
