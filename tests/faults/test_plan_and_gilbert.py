"""Tests for fault plans (pure data) and the Gilbert–Elliott loss process."""

import pytest

from repro.core import OnlinePollingScheduler
from repro.faults import (
    BatteryDepletion,
    BurstyLinks,
    FaultPlan,
    GilbertElliottLoss,
    NodeCrash,
    TransientStun,
)
from repro.routing import solve_min_max_load
from repro.topology import HEAD


# --- plans ----------------------------------------------------------------------


def test_empty_plan_is_empty():
    plan = FaultPlan()
    assert plan.is_empty
    assert plan.faulted_nodes() == set()


def test_plan_normalizes_lists_to_tuples():
    plan = FaultPlan(crashes=[NodeCrash(node=1, at=2.0)])
    assert isinstance(plan.crashes, tuple)
    assert not plan.is_empty
    assert plan.faulted_nodes() == {1}


def test_plan_rejects_duplicate_crashes():
    with pytest.raises(ValueError, match="duplicate"):
        FaultPlan(crashes=[NodeCrash(node=1, at=2.0), NodeCrash(node=1, at=5.0)])


def test_head_cannot_be_faulted():
    with pytest.raises(ValueError, match="head"):
        NodeCrash(node=HEAD, at=1.0)


@pytest.mark.parametrize(
    "bad",
    [
        lambda: NodeCrash(node=-5, at=1.0),
        lambda: NodeCrash(node=1, at=-1.0),
        lambda: TransientStun(node=1, at=1.0, duration=0.0),
        lambda: BatteryDepletion(node=1, capacity_j=0.0),
        lambda: BatteryDepletion(node=1, capacity_j=1.0, check_interval=0.0),
        lambda: BurstyLinks(p_good_to_bad=1.5),
        lambda: BurstyLinks(loss_bad=1.0, p_bad_to_good=0.0),
        lambda: BurstyLinks(coherence_s=0.0),
    ],
)
def test_invalid_fault_parameters_raise(bad):
    with pytest.raises(ValueError):
        bad()


def test_plan_faulted_nodes_unions_all_kinds():
    plan = FaultPlan(
        crashes=[NodeCrash(node=1, at=1.0)],
        stuns=[TransientStun(node=2, at=1.0, duration=1.0)],
        batteries=[BatteryDepletion(node=3, capacity_j=0.5)],
    )
    assert plan.faulted_nodes() == {1, 2, 3}


# --- Gilbert–Elliott ------------------------------------------------------------


def test_ge_deterministic_per_seed():
    def draws(seed):
        ge = GilbertElliottLoss(seed=seed)
        return [ge.frame_fails(0, 1, t * 0.01) for t in range(200)]

    assert draws(4) == draws(4)
    assert draws(4) != draws(5)


def test_ge_chains_independent_of_query_order():
    # Link (0,1) must see the same fate whether or not link (2,3) is
    # queried first: per-link derived RNG, not a shared stream.
    a = GilbertElliottLoss(seed=9)
    b = GilbertElliottLoss(seed=9)
    seq_a = []
    for t in range(100):
        a.frame_fails(2, 3, t * 0.01)  # interleaved traffic on another link
        seq_a.append(a.frame_fails(0, 1, t * 0.01))
    seq_b = [b.frame_fails(0, 1, t * 0.01) for t in range(100)]
    assert seq_a == seq_b


def test_ge_good_state_never_loses_by_default():
    # p_gb=0 pins the chain GOOD; default loss_good=0 -> no losses ever.
    ge = GilbertElliottLoss(p_good_to_bad=0.0, seed=0)
    assert not any(ge.frame_fails(0, 1, t * 0.01) for t in range(500))


def test_ge_bad_state_losses_are_bursty():
    # Force an always-BAD chain losing every frame: losses are maximally
    # correlated (one "burst" spanning the whole run).
    ge = GilbertElliottLoss(
        p_good_to_bad=1.0, p_bad_to_good=0.0, loss_good=0.0, loss_bad=1.0, seed=0
    )
    ge.frame_fails(0, 1, 0.0)  # first frame: still GOOD (no step yet)
    results = [ge.frame_fails(0, 1, 0.1 + t * 0.05) for t in range(50)]
    assert all(results)


def test_ge_stats_count_frames_and_losses():
    ge = GilbertElliottLoss(
        p_good_to_bad=1.0, p_bad_to_good=0.0, loss_bad=1.0, seed=0
    )
    for t in range(10):
        ge.frame_fails(0, 1, t * 0.05)
    (seen, lost) = ge.stats()[(0, 1)]
    assert seen == 10
    assert lost >= 9  # everything after the first GOOD frame


def test_ge_as_scheduler_loss_model(chain_cluster, all_compatible):
    """Plugged into the abstract scheduler through the LossModel protocol:
    polling still completes (re-polls absorb the bursts) and is seeded."""
    plan = solve_min_max_load(chain_cluster).routing_plan()
    r1 = OnlinePollingScheduler.poll(
        plan, all_compatible, loss=GilbertElliottLoss(seed=3)
    )
    r2 = OnlinePollingScheduler.poll(
        plan, all_compatible, loss=GilbertElliottLoss(seed=3)
    )
    assert r1.pool.all_deleted()
    assert r1.makespan == r2.makespan
    assert r1.total_attempts == r2.total_attempts
