"""Dynamic-network chaos and the empty-plan bit-for-bit contract.

Three promises from DESIGN.md §11 under test:

* **Chaos** — random churn (joins + leaves) mixed with unannounced crashes,
  mobility, and online re-clustering finishes strict-validation-clean over
  many seeds, with blacklists and exclusions correctly carried across every
  re-form (no demand ever routed to a departed or blacklisted node).
* **Bit-for-bit** — with no dynamic plan and re-clustering off, every
  existing path (static run, crash-plan run, fig2/fig4) produces outputs
  *identical* to the pre-churn code, down to per-radio energy floats.  The
  golden digests below were captured by running the same fingerprint on the
  seed commit and on this tree and checking they matched.
* **Payoff** — under pure churn, staleness-triggered re-clustering strictly
  beats never-re-clustering on delivered coverage (the ablation's headline).
"""

import hashlib
import json
import random

import pytest

from repro import validate
from repro.experiments import churn_ablation
from repro.faults import FaultPlan, Mobility, NodeCrash, NodeJoin, NodeLeave
from repro.net.cluster_sim import PollingSimConfig, run_polling_simulation
from repro.topology import StalenessTrigger

SENSORS = 24
CYCLES = 8
CYCLE = 10.0


def _chaos_plan(seed: int) -> FaultPlan:
    """Random joins + leaves + one crash + slow drift, from a local RNG."""
    rng = random.Random(seed)
    nodes = rng.sample(range(SENSORS), 3)
    t = lambda: rng.uniform(CYCLE, (CYCLES - 2) * CYCLE)  # noqa: E731
    return FaultPlan(
        joins=[
            NodeJoin(at=t(), position=(rng.uniform(0, 200), rng.uniform(0, 200)))
            for _ in range(2)
        ],
        leaves=[NodeLeave(node=nodes[0], at=t()), NodeLeave(node=nodes[1], at=t())],
        crashes=[NodeCrash(node=nodes[2], at=t())],
        mobility=Mobility(speed_mps=0.3),
    )


@pytest.mark.parametrize("seed", [1, 2, 5, 9, 17])
@pytest.mark.parametrize("policy", ["staleness", "periodic"])
def test_chaos_churn_strict_clean(seed, policy):
    trigger = (
        StalenessTrigger()
        if policy == "staleness"
        else StalenessTrigger(membership_delta=0, repair_fallbacks=0, period_cycles=3)
    )
    cfg = PollingSimConfig(
        n_sensors=SENSORS,
        n_cycles=CYCLES,
        seed=seed,
        fault_plan=_chaos_plan(seed),
        recluster=policy,
        recluster_trigger=trigger,
        backup_k=1,
    )
    with validate.strict():
        res = run_polling_simulation(cfg)
    assert res.violations == []
    mac = res.mac
    # Exclusions carried across every re-form: nothing routed to the gone.
    gone = mac.blacklisted | mac.departed | mac.absent
    plan = mac.routing.routing_plan()
    for s, path in plan.paths.items():
        assert s not in gone
        assert not (set(path) & gone)
    # The head learned every announced departure without detection cycles.
    assert res.injector.departed <= mac.departed
    # Re-forms actually happened and were logged with their reasons.
    assert mac.reclusters == len(mac.recluster_log)
    assert mac.reclusters >= 1
    for entry in mac.recluster_log:
        assert entry["reason"] in ("membership", "repairs", "overload", "periodic")


@pytest.mark.parametrize("seed", [1, 9])
def test_chaos_churn_is_deterministic(seed):
    cfg = PollingSimConfig(
        n_sensors=SENSORS,
        n_cycles=CYCLES,
        seed=seed,
        fault_plan=_chaos_plan(seed),
        recluster="staleness",
    )
    a = run_polling_simulation(cfg)
    b = run_polling_simulation(cfg)
    assert a.packets_delivered == b.packets_delivered
    assert a.mac.recluster_log == b.mac.recluster_log
    assert a.staleness == b.staleness


def test_joiners_admitted_and_served():
    plan = FaultPlan(joins=[NodeJoin(at=1.5 * CYCLE, position=(90.0, 90.0))])
    cfg = PollingSimConfig(
        n_sensors=12,
        n_cycles=6,
        seed=3,
        fault_plan=plan,
        recluster="staleness",
    )
    with validate.strict():
        res = run_polling_simulation(cfg)
    joiner = 12  # joins allocate ids after the deployed sensors, plan order
    stale = res.staleness
    assert stale.joins_planned == 1
    assert stale.joins_powered == 1
    assert stale.joins_admitted == 1
    assert joiner not in res.mac.absent
    assert joiner in res.mac.routing.routing_plan().paths
    # The joiner's data actually arrived at the head after admission.
    origins = {p.origin for p in res.mac.delivered_packets()}
    assert joiner in origins


def test_recluster_off_never_admits_but_still_repairs_leaves():
    plan = FaultPlan(
        joins=[NodeJoin(at=1.5 * CYCLE, position=(90.0, 90.0))],
        leaves=[NodeLeave(node=2, at=2.5 * CYCLE)],
    )
    cfg = PollingSimConfig(
        n_sensors=12, n_cycles=6, seed=3, fault_plan=plan, recluster="off"
    )
    with validate.strict():
        res = run_polling_simulation(cfg)
    mac = res.mac
    assert mac.reclusters == 0
    assert 12 in mac.absent  # joiner powered up but was never admitted
    assert 2 in mac.departed
    plan_paths = mac.routing.routing_plan().paths
    assert 2 not in plan_paths  # announced leave repaired around, no detection
    assert 12 not in plan_paths
    assert mac.route_repairs >= 1
    # No detection cycles were burned inferring the announced departure.
    assert 2 not in mac.blacklisted


# -- bit-for-bit regression ----------------------------------------------------

# sha256 over the full-precision (float.hex) run fingerprint, captured
# identically on the pre-churn seed commit and on this tree.
GOLDEN = {
    "fig2": "9b65389652515be0e9f94196145dc0d320639365c81b4eea8c21231d6fed2ec0",
    "fig4": "db4ef4a7da42457c784de2a03d075345eb4856129c7e4eb14fb4145f7638e0c2",
    "static-seed0": "b04afab7ed04f4e49ff5e488fc99aa7f7bd3238916b191bcf9d7220592c6c80c",
    "static-seed3": "c0effcff8b8c560637d5810c7a2358c26fdc2425fb255b32a9b11dcd1600f3b8",
    "crash-seed3": "f4639e986445054536eda7f7e827ee57cd1e5d1d6387a80e50a08d10af751842",
}


def _run_fingerprint(cfg) -> str:
    res = run_polling_simulation(cfg)
    n = res.phy.n_sensors
    payload = {
        "delivered": res.packets_delivered,
        "failed": res.mac.packets_failed,
        "generated": res.packets_generated,
        "elapsed": res.elapsed.hex(),
        "active": [float(x).hex() for x in res.active_fraction],
        "duty": [cs.duty_time.hex() for cs in res.mac.cycle_stats],
        "energies": [res.phy.trx(i).meter.consumed_j.hex() for i in range(n)],
        "head_energy": res.phy.trx(n).meter.consumed_j.hex(),
    }
    return hashlib.sha256(json.dumps(payload, sort_keys=True).encode()).hexdigest()


@pytest.mark.parametrize("seed", [0, 3])
def test_static_run_bit_for_bit_golden(seed):
    assert (
        _run_fingerprint(PollingSimConfig(n_sensors=30, n_cycles=8, seed=seed))
        == GOLDEN[f"static-seed{seed}"]
    )


def test_empty_dynamic_plan_bit_for_bit_golden():
    # FaultPlan() and explicit recluster="off" must ride the same path.
    cfg = PollingSimConfig(
        n_sensors=30, n_cycles=8, seed=3, fault_plan=FaultPlan(), recluster="off"
    )
    assert _run_fingerprint(cfg) == GOLDEN["static-seed3"]


def test_crash_plan_bit_for_bit_golden():
    # The fault-ablation path: a crash plan with zero dynamic events must
    # be untouched by the churn machinery (same detector, same repairs).
    plan = FaultPlan(crashes=[NodeCrash(node=1, at=20.3)])
    cfg = PollingSimConfig(n_sensors=30, n_cycles=8, seed=3, fault_plan=plan)
    assert _run_fingerprint(cfg) == GOLDEN["crash-seed3"]


def test_fig2_fig4_bit_for_bit_golden():
    from repro.experiments import fig2, fig4

    f2 = hashlib.sha256(
        json.dumps(fig2.run(), sort_keys=True, default=str).encode()
    ).hexdigest()
    f4 = hashlib.sha256(
        json.dumps(fig4.run(), sort_keys=True, default=str).encode()
    ).hexdigest()
    assert f2 == GOLDEN["fig2"]
    assert f4 == GOLDEN["fig4"]


# -- the ablation's payoff criterion -------------------------------------------


def test_staleness_strictly_beats_off_under_churn():
    rows = churn_ablation.run(
        n_sensors=24,
        n_cycles=10,
        seed=7,
        churn_rates=(0.6,),
        mobility_speeds=(0.0,),
        policies=("off", "staleness"),
    )
    by = {r["policy"]: r for r in rows}
    assert by["staleness"]["coverage"] > by["off"]["coverage"]
    assert by["staleness"]["delivered"] > by["off"]["delivered"]
    assert by["staleness"]["reclusters"] >= 1
    assert by["off"]["reclusters"] == 0
    assert by["off"]["violations"] == 0 and by["staleness"]["violations"] == 0
