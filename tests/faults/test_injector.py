"""Tests for the fault injector against a live PHY: crash, stun, battery."""

import pytest

from repro.faults import (
    BatteryDepletion,
    BurstyLinks,
    FaultInjector,
    FaultPlan,
    NodeCrash,
    TransientStun,
)
from repro.mac.base import build_cluster_phy
from repro.radio.energy import RadioState
from repro.radio.packet import Frame, FrameType
from repro.sim import Simulator
from repro.topology import Cluster, line


def _phy(n=3):
    sim = Simulator()
    dep = line(n, spacing=30.0, comm_range=35.0)
    phy = build_cluster_phy(sim, Cluster.from_deployment(dep), sensor_range_m=35.0)
    return sim, phy


def test_crash_silences_radio_permanently():
    sim, phy = _phy()
    plan = FaultPlan(crashes=[NodeCrash(node=1, at=5.0)])
    inj = FaultInjector(sim, phy, plan)
    sim.run(until=10.0)
    trx = phy.trx(1)
    assert inj.is_dead(1)
    assert trx.dead
    assert trx.meter.state is RadioState.SLEEP
    trx.wake()  # a dead radio ignores wake attempts
    assert trx.meter.state is RadioState.SLEEP
    assert inj.death_times() == {1: 5.0}


def test_crash_is_fail_stop_not_retroactive():
    sim, phy = _phy()
    FaultInjector(sim, phy, FaultPlan(crashes=[NodeCrash(node=1, at=5.0)]))
    sim.run(until=4.0)
    assert not phy.trx(1).dead  # alive until its hour comes
    sim.run(until=6.0)
    assert phy.trx(1).dead


def test_stun_recovers_after_duration():
    sim, phy = _phy()
    plan = FaultPlan(stuns=[TransientStun(node=1, at=2.0, duration=3.0)])
    inj = FaultInjector(sim, phy, plan)
    sim.run(until=3.0)
    assert 1 in inj.stunned
    assert phy.trx(1).meter.state is RadioState.SLEEP
    sim.run(until=6.0)
    assert 1 not in inj.stunned
    assert not phy.trx(1).dead
    assert phy.trx(1).meter.state is RadioState.IDLE  # back to listening
    kinds = [e.kind for e in inj.events]
    assert kinds == ["stun", "recover"]


def test_battery_depletion_kills_listening_node():
    sim, phy = _phy()
    # Listening burns energy constantly; a tiny budget dies fast.
    plan = FaultPlan(batteries=[BatteryDepletion(node=0, capacity_j=0.01, check_interval=0.05)])
    inj = FaultInjector(sim, phy, plan)
    sim.run(until=60.0)
    assert inj.is_dead(0)
    death = inj.death_times()[0]
    meter = phy.trx(0).meter
    # Died roughly when idle-listen power * t crossed capacity (one check late at most).
    expected = 0.01 / meter.params.idle_w
    assert death == pytest.approx(expected, abs=0.05)
    assert [e.kind for e in inj.events] == ["battery-death"]


def test_battery_never_fires_with_ample_capacity():
    sim, phy = _phy()
    plan = FaultPlan(batteries=[BatteryDepletion(node=0, capacity_j=1e9)])
    inj = FaultInjector(sim, phy, plan)
    sim.run(until=5.0)
    assert not inj.dead
    assert inj.events == []


def test_dead_node_does_not_transmit():
    sim, phy = _phy()
    FaultInjector(sim, phy, FaultPlan(crashes=[NodeCrash(node=0, at=1.0)]))
    heard: list[Frame] = []
    phy.trx(1).on_receive(lambda frame, p: heard.append(frame))

    def try_send():
        trx = phy.trx(0)
        if not trx.is_sleeping and not trx.is_transmitting:
            trx.transmit(
                Frame(ftype=FrameType.DATA, src=0, dst=1, size_bytes=20, payload=None)
            )

    sim.at(0.5, try_send)  # before death: heard
    sim.at(2.0, try_send)  # after death: radio is dark, nothing sent
    sim.run(until=3.0)
    assert len(heard) == 1


def test_injector_rejects_unknown_sensor():
    sim, phy = _phy(n=3)
    with pytest.raises(ValueError, match="cluster has 3"):
        FaultInjector(sim, phy, FaultPlan(crashes=[NodeCrash(node=7, at=1.0)]))


def test_bursty_plan_installs_link_loss_on_medium():
    sim, phy = _phy()
    assert phy.medium.link_loss is None
    inj = FaultInjector(sim, phy, FaultPlan(bursty_links=BurstyLinks()))
    assert phy.medium.link_loss is inj.link_loss
    assert inj.link_loss is not None


def test_empty_plan_schedules_nothing():
    sim, phy = _phy()
    before = sim.pending_count
    inj = FaultInjector(sim, phy, FaultPlan())
    assert inj.events == []
    assert inj.link_loss is None
    assert phy.medium.link_loss is None
    assert sim.pending_count == before
