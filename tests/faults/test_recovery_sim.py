"""End-to-end fault & recovery: the ISSUE's acceptance scenarios.

A seeded cluster run with a plan that kills a routing relay mid-run must
complete without error, report degraded delivery and surviving coverage,
be exactly repeatable, and — crucially — an empty plan must reproduce the
unfaulted run bit for bit.
"""

import pytest

from repro.faults import BurstyLinks, FaultPlan, NodeCrash, TransientStun
from repro.metrics import degradation_report
from repro.net.cluster_sim import PollingSimConfig, run_polling_simulation


def _relay_of(result):
    plan = result.mac.routing.routing_plan()
    relays = sorted({n for p in plan.paths.values() for n in p[1:-1] if n >= 0})
    assert relays, "seed must produce a multi-hop topology"
    return relays[0]


@pytest.fixture(scope="module")
def baseline():
    return run_polling_simulation(PollingSimConfig(n_sensors=30, n_cycles=8, seed=3))


@pytest.fixture(scope="module")
def crashed(baseline):
    victim = _relay_of(baseline)
    # t=20.3 lands inside cycle 2's data phase: in-flight requests through
    # the victim exhaust their retry budgets -> delivery ratio < 1.
    plan = FaultPlan(crashes=[NodeCrash(node=victim, at=20.3)])
    cfg = PollingSimConfig(n_sensors=30, n_cycles=8, seed=3, fault_plan=plan)
    return victim, run_polling_simulation(cfg)


def test_relay_crash_completes_and_degrades(crashed, baseline):
    victim, res = crashed
    deg = res.degradation
    assert deg.delivery_ratio < 1.0
    assert deg.failed > 0
    assert res.packets_delivered < baseline.packets_delivered
    assert deg.surviving_coverage < 1.0
    assert deg.dead_true == frozenset({victim})


def test_head_localizes_exactly_the_dead_relay(crashed):
    victim, res = crashed
    deg = res.degradation
    assert deg.blacklisted == frozenset({victim})
    assert deg.false_positives == frozenset()
    assert deg.missed_deaths == frozenset()
    assert deg.route_repairs >= 1


def test_sensors_behind_dead_relay_are_rerouted_or_reported(crashed):
    victim, res = crashed
    # every sensor is accounted for: delivered-to again, or unreachable
    plan = res.mac.routing.routing_plan()
    for s in range(res.config.n_sensors):
        if s == victim or s in res.mac.unreachable:
            assert s not in plan.paths
        else:
            assert victim not in plan.paths.get(s, ())


def test_faulted_run_is_deterministic(crashed):
    victim, res = crashed
    again = run_polling_simulation(res.config)
    assert again.packets_delivered == res.packets_delivered
    assert again.mac.packets_failed == res.mac.packets_failed
    assert again.elapsed == res.elapsed
    assert again.degradation == res.degradation


def test_empty_plan_bit_for_bit_identical(baseline):
    cfg = PollingSimConfig(n_sensors=30, n_cycles=8, seed=3, fault_plan=FaultPlan())
    res = run_polling_simulation(cfg)
    assert res.injector is None
    assert res.packets_delivered == baseline.packets_delivered
    assert res.mac.packets_failed == baseline.mac.packets_failed
    assert res.elapsed == baseline.elapsed
    assert res.active_fraction.tolist() == baseline.active_fraction.tolist()
    assert [cs.duty_time for cs in res.mac.cycle_stats] == [
        cs.duty_time for cs in baseline.mac.cycle_stats
    ]
    # (seq is a process-global counter, not per-run; compare the rest)
    base_pkts = [(p.origin, p.created) for p in baseline.mac.delivered_packets()]
    res_pkts = [(p.origin, p.created) for p in res.mac.delivered_packets()]
    assert res_pkts == base_pkts


def test_no_fault_run_reports_clean_degradation(baseline):
    deg = baseline.degradation
    assert deg.delivery_ratio == 1.0
    assert deg.surviving_coverage == 1.0
    assert deg.blacklisted == frozenset()
    assert deg.stranded_packets == 0
    assert deg.route_repairs == 0


def test_stun_blacklists_then_wrongly_but_conservatively(baseline):
    """A long stun is indistinguishable from death under fail-stop
    assumptions: the head writes the node off (documented behavior), and
    the run still completes with partial coverage."""
    victim = _relay_of(baseline)
    plan = FaultPlan(stuns=[TransientStun(node=victim, at=20.3, duration=30.0)])
    cfg = PollingSimConfig(n_sensors=30, n_cycles=8, seed=3, fault_plan=plan)
    res = run_polling_simulation(cfg)
    deg = res.degradation
    assert deg.dead_true == frozenset()  # it did recover eventually
    assert victim in deg.blacklisted
    assert deg.false_positives == deg.blacklisted


def test_bursty_links_degrade_but_complete():
    plan = FaultPlan(bursty_links=BurstyLinks())
    cfg = PollingSimConfig(
        n_sensors=20, n_cycles=6, seed=3, fault_plan=plan, dead_after_misses=6
    )
    res = run_polling_simulation(cfg)
    assert res.injector is not None
    stats = res.injector.link_loss.stats()
    assert sum(lost for _, lost in stats.values()) > 0  # fades actually bit
    assert res.packets_delivered > 0
    again = run_polling_simulation(cfg)
    assert again.packets_delivered == res.packets_delivered


def test_degradation_report_function_matches_property(crashed):
    _, res = crashed
    assert degradation_report(res.mac, res.injector) == res.degradation
