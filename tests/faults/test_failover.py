"""In-cycle failover onto k-disjoint backups: the ISSUE's chaos acceptance.

A relay crash with ``backup_k >= 1`` must be absorbed *within* the polling
cycle it is discovered in — pending requests re-issue along a precomputed
node-disjoint backup path next slot — so the median time-to-recover stays
at or under one polling cycle and strictly beats the boundary-repair-only
baseline (``backup_k=0``), with zero strict-mode invariant violations.
With ``backup_k=0`` none of the failover machinery may even exist.
"""

import random

import pytest

from repro import validate
from repro.faults import FaultPlan, NodeCrash
from repro.net.cluster_sim import PollingSimConfig, run_polling_simulation
from repro.routing import compute_backup_routes

CYCLES = 8
SENSORS = 30


def _backed_up_relays(mac) -> list[int]:
    """Relays every downstream sensor of which has a disjoint backup.

    Strict node-disjointness means not every relay is survivable (a sensor
    whose alternatives all share one cut node keeps falling back to
    boundary repair); the chaos crash targets the relays the feature
    promises to absorb.
    """
    routes = compute_backup_routes(mac.routing, k=1)
    fp = mac.routing.flow_paths
    relays = sorted({n for bundles in fp.values() for p, _ in bundles for n in p[1:-1]})
    good = []
    for r in relays:
        downstream = [
            s for s, b in fp.items() if s != r and any(r in p[1:-1] for p, _ in b)
        ]
        if downstream and all(
            any(r not in bp for bp in routes.paths_for(s)) for s in downstream
        ):
            good.append(r)
    return good


def _chaos_runs(seed: int):
    """One random relay crash, run at k=0 and k=1 under strict validation."""
    probe = run_polling_simulation(
        PollingSimConfig(n_sensors=SENSORS, n_cycles=2, seed=seed)
    )
    rng = random.Random(seed)
    victim = rng.choice(_backed_up_relays(probe.mac))
    at = rng.uniform(12.0, 42.0)  # anywhere from cycle 1 to cycle 4
    plan = FaultPlan(crashes=[NodeCrash(node=victim, at=at)])
    results = {}
    for k in (0, 1):
        cfg = PollingSimConfig(
            n_sensors=SENSORS, n_cycles=CYCLES, seed=seed, fault_plan=plan, backup_k=k
        )
        with validate.strict():
            results[k] = run_polling_simulation(cfg)
        assert results[k].violations == []
    return victim, results


@pytest.mark.parametrize("seed", [3, 5, 7, 11, 13])
def test_chaos_failover_recovers_within_one_cycle(seed):
    victim, results = _chaos_runs(seed)
    reactive = results[0].availability
    proactive = results[1].availability
    # The ISSUE's bar: median TTR <= 1 polling cycle, strictly better than
    # waiting for the duty-cycle-boundary repair.
    assert proactive.median_ttr_cycles <= 1.0
    assert proactive.median_ttr_cycles < reactive.median_ttr_cycles
    assert proactive.in_cycle_failovers > 0
    assert reactive.in_cycle_failovers == 0
    # Failing over must not cost delivery relative to the baseline.
    assert results[1].packets_delivered >= results[0].packets_delivered
    assert results[1].mac.packets_failed <= results[0].mac.packets_failed


@pytest.mark.parametrize("seed", [3, 7])
def test_failover_does_not_hide_the_death(seed):
    # Successful failovers must still feed the abandoned paths to evidence
    # mining: the dead relay ends up blacklisted and routed around, not
    # silently tolerated forever.
    victim, results = _chaos_runs(seed)
    mac = results[1].mac
    assert victim in mac.blacklisted
    assert mac.route_repairs >= 1
    post_repair_plan = mac.routing.routing_plan()
    for sensor, path in post_repair_plan.paths.items():
        assert victim not in path


def test_k0_has_no_failover_machinery():
    plan = FaultPlan(crashes=[NodeCrash(node=7, at=20.3)])
    cfg = PollingSimConfig(
        n_sensors=SENSORS, n_cycles=CYCLES, seed=3, fault_plan=plan, backup_k=0
    )
    res = run_polling_simulation(cfg)
    assert res.mac.backups is None
    assert res.mac.in_cycle_failovers == 0
    assert res.mac.failover_log == []
    assert res.availability.in_cycle_failovers == 0
    # and the run stays exactly repeatable
    again = run_polling_simulation(cfg)
    assert again.packets_delivered == res.packets_delivered
    assert again.mac.packets_failed == res.mac.packets_failed
    assert again.elapsed == res.elapsed


def test_failover_events_are_recorded_with_paths():
    plan = FaultPlan(crashes=[NodeCrash(node=7, at=20.3)])
    cfg = PollingSimConfig(
        n_sensors=SENSORS, n_cycles=CYCLES, seed=3, fault_plan=plan, backup_k=1
    )
    res = run_polling_simulation(cfg)
    assert res.mac.in_cycle_failovers > 0
    events = [ev for entry in res.mac.failover_log for ev in entry["events"]]
    assert len(events) == res.mac.in_cycle_failovers
    for ev in events:
        assert ev.reason in ("retry-exhausted", "miss-streak")
        assert ev.old_path != ev.new_path
        assert ev.old_path[0] == ev.new_path[0] == ev.sensor
        # the switch avoided the interior it abandoned
        assert 7 not in ev.new_path[1:-1]


def test_backup_k_rejected_when_negative():
    with pytest.raises(ValueError):
        run_polling_simulation(PollingSimConfig(n_sensors=6, n_cycles=1, backup_k=-1))
