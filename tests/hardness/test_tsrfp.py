"""Tests executing the Lemma-1 reduction: TSRFP <-> Hamiltonian Path."""

from itertools import combinations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import OnlinePollingScheduler, RequestPool, solve_optimal
from repro.core.optimal import feasible_within
from repro.hardness import (
    find_hamiltonian_path,
    hamiltonian_path_from_schedule,
    has_hamiltonian_path,
    is_hamiltonian_path,
    physical_oracle_for_graph,
    random_graph,
    schedule_from_hamiltonian_path,
    tsrfp_from_graph,
)
from repro.topology import HEAD


def gadget_links(inst):
    a = [
        (inst.tsrf.second_level(i), inst.tsrf.first_level(i))
        for i in range(inst.n_branches)
    ]
    b = [(inst.tsrf.first_level(i), HEAD) for i in range(inst.n_branches)]
    return a, b


def test_gadget_compatibilities_encode_edges():
    adj = random_graph(4, 0.5, seed=2)
    inst = tsrfp_from_graph(adj)
    a, b = gadget_links(inst)
    for i in range(4):
        for j in range(4):
            if i == j:
                continue
            assert inst.oracle.compatible([a[i], b[j]]) == bool(adj[i, j])
    # second-level transmissions never pair
    for i, j in combinations(range(4), 2):
        assert not inst.oracle.compatible([a[i], a[j]])


def test_deadline_is_n_plus_one():
    assert tsrfp_from_graph(random_graph(5, 0.5, seed=0)).deadline == 6


@given(st.integers(0, 60))
@settings(max_examples=25, deadline=None)
def test_reduction_equivalence(seed):
    """THE theorem: schedule within n+1 slots exists iff HP exists."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 6))
    adj = random_graph(n, float(rng.uniform(0.2, 0.9)), seed=seed)
    inst = tsrfp_from_graph(adj)
    plan = inst.routing_plan()
    assert feasible_within(plan, inst.oracle, inst.deadline) == has_hamiltonian_path(adj)


@given(st.integers(0, 60))
@settings(max_examples=20, deadline=None)
def test_certificate_round_trip(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 7))
    adj = random_graph(n, 0.6, seed=seed)
    hp = find_hamiltonian_path(adj)
    if hp is None:
        return
    inst = tsrfp_from_graph(adj)
    schedule = schedule_from_hamiltonian_path(inst, hp)
    # the constructed schedule is fully legal and meets the deadline
    schedule.validate(list(RequestPool(inst.routing_plan())), inst.oracle)
    assert schedule.makespan() == inst.deadline
    # and converts back to a (possibly different) valid Hamiltonian path
    back = hamiltonian_path_from_schedule(inst, schedule)
    assert is_hamiltonian_path(adj, back)


def test_extraction_from_optimal_schedule():
    adj = random_graph(5, 0.6, seed=1)
    if not has_hamiltonian_path(adj):
        pytest.skip("seed produced HP-free graph")
    inst = tsrfp_from_graph(adj)
    opt = solve_optimal(inst.routing_plan(), inst.oracle)
    assert opt.makespan == inst.deadline
    back = hamiltonian_path_from_schedule(inst, opt.schedule)
    assert is_hamiltonian_path(adj, back)


def test_extraction_rejects_slow_schedules():
    adj = np.zeros((3, 3), dtype=bool)  # no edges: no HP for n >= 2
    inst = tsrfp_from_graph(adj)
    greedy = OnlinePollingScheduler.poll(inst.routing_plan(), inst.oracle)
    assert greedy.makespan > inst.deadline
    with pytest.raises(ValueError):
        hamiltonian_path_from_schedule(inst, greedy.schedule)


def test_greedy_meets_deadline_only_by_luck_never_below():
    for seed in range(5):
        adj = random_graph(4, 0.5, seed=seed)
        inst = tsrfp_from_graph(adj)
        greedy = OnlinePollingScheduler.poll(inst.routing_plan(), inst.oracle)
        assert greedy.makespan >= inst.deadline  # deadline is the optimum


def test_invalid_path_inputs():
    inst = tsrfp_from_graph(random_graph(3, 0.9, seed=4))
    with pytest.raises(ValueError):
        schedule_from_hamiltonian_path(inst, [0, 1])  # not a permutation
    with pytest.raises(ValueError):
        schedule_from_hamiltonian_path(inst, [0, 1, 1])


# --- physical realization (the paper's "interference can be arbitrary" point) -----

@given(st.integers(0, 30))
@settings(max_examples=15, deadline=None)
def test_physical_realization_matches_tabulated(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 6))
    adj = random_graph(n, 0.5, seed=seed)
    inst = tsrfp_from_graph(adj)
    phys = physical_oracle_for_graph(adj)
    a, b = gadget_links(inst)
    links = a + b
    for x, y in combinations(links, 2):
        if len({x[0], x[1], y[0], y[1]}) < 4:
            continue
        assert phys.compatible([x, y]) == inst.oracle.compatible([x, y])
    for link in links:
        assert phys.compatible([link])


def test_physical_parameters_validated():
    adj = random_graph(3, 0.5, seed=0)
    with pytest.raises(ValueError):
        physical_oracle_for_graph(adj, signal=1.0, weak=1.0, strong=1.0, beta=10.0)
