"""Tests for the exact Hamiltonian-path and Partition solvers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hardness import (
    find_hamiltonian_path,
    find_partition,
    has_hamiltonian_path,
    has_partition,
    is_hamiltonian_path,
    is_partition,
    random_graph,
)


# --- Hamiltonian path ------------------------------------------------------------

def path_graph(n):
    adj = np.zeros((n, n), dtype=bool)
    for i in range(n - 1):
        adj[i, i + 1] = adj[i + 1, i] = True
    return adj


def test_path_graph_has_hp():
    adj = path_graph(6)
    hp = find_hamiltonian_path(adj)
    assert hp is not None and is_hamiltonian_path(adj, hp)


def test_star_graph_no_hp():
    adj = np.zeros((5, 5), dtype=bool)
    for leaf in range(1, 5):
        adj[0, leaf] = adj[leaf, 0] = True
    assert not has_hamiltonian_path(adj)


def test_disconnected_no_hp():
    adj = np.zeros((4, 4), dtype=bool)
    adj[0, 1] = adj[1, 0] = True
    adj[2, 3] = adj[3, 2] = True
    assert not has_hamiltonian_path(adj)


def test_complete_graph_hp():
    adj = ~np.eye(6, dtype=bool)
    hp = find_hamiltonian_path(adj)
    assert hp is not None and is_hamiltonian_path(adj, hp)


def test_tiny_cases():
    assert find_hamiltonian_path(np.zeros((0, 0), dtype=bool)) == []
    assert find_hamiltonian_path(np.zeros((1, 1), dtype=bool)) == [0]
    assert not has_hamiltonian_path(np.zeros((2, 2), dtype=bool))


def test_is_hamiltonian_path_verifier():
    adj = path_graph(4)
    assert is_hamiltonian_path(adj, [0, 1, 2, 3])
    assert not is_hamiltonian_path(adj, [0, 2, 1, 3])  # 0-2 not an edge
    assert not is_hamiltonian_path(adj, [0, 1, 2])  # misses a vertex
    assert not is_hamiltonian_path(adj, [0, 1, 2, 2])


def test_adjacency_validation():
    with pytest.raises(ValueError):
        find_hamiltonian_path(np.triu(np.ones((3, 3), dtype=bool), 1))  # asymmetric
    with pytest.raises(ValueError):
        find_hamiltonian_path(np.ones((3, 3), dtype=bool))  # self loops


def _brute_force_hp(adj) -> bool:
    from itertools import permutations

    n = adj.shape[0]
    return any(
        all(adj[a, b] for a, b in zip(p, p[1:]))
        for p in permutations(range(n))
    )


@given(st.integers(0, 200))
@settings(max_examples=40, deadline=None)
def test_hp_solver_matches_brute_force(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 7))
    adj = random_graph(n, float(rng.uniform(0.2, 0.8)), seed=seed)
    assert has_hamiltonian_path(adj) == _brute_force_hp(adj)


# --- Partition -----------------------------------------------------------------------

def test_partition_simple_yes():
    split = find_partition([3, 2, 1, 2])
    assert split is not None
    left, right = split
    assert is_partition([3, 2, 1, 2], left, right)


def test_partition_odd_sum_no():
    assert find_partition([3, 3, 1]) is None


def test_partition_even_sum_but_impossible():
    assert find_partition([1, 1, 6]) is None
    assert has_partition([4, 4]) is True


def test_partition_rejects_nonpositive():
    with pytest.raises(ValueError):
        find_partition([0, 2])
    with pytest.raises(ValueError):
        find_partition([-1, 1])


def test_is_partition_verifier():
    assert is_partition([2, 2], [0], [1])
    assert not is_partition([2, 3], [0], [1])
    assert not is_partition([2, 2], [0], [0])  # not a partition of indices
    assert not is_partition([2, 2], [0], [])


def _brute_partition(values) -> bool:
    from itertools import combinations

    total = sum(values)
    if total % 2:
        return False
    idx = range(len(values))
    return any(
        sum(values[i] for i in combo) == total // 2
        for r in range(len(values) + 1)
        for combo in combinations(idx, r)
    )


@given(st.lists(st.integers(1, 20), min_size=1, max_size=10))
@settings(max_examples=60, deadline=None)
def test_partition_matches_brute_force(values):
    split = find_partition(values)
    assert (split is not None) == _brute_partition(values)
    if split is not None:
        assert is_partition(values, *split)
