"""Tests for the X1MHP gadget (incl. the documented leak) and CPAR reduction."""

import numpy as np
import pytest

from repro.core import RequestPool
from repro.core.optimal import feasible_within
from repro.hardness import (
    brute_force_min_pseudo_rate,
    canonical_x1mhp_schedule,
    cpar_from_partition,
    cpar_threshold,
    find_hamiltonian_path,
    find_partition,
    has_partition,
    sectors_from_subsets,
    subsets_from_sectors,
    x1mhp_deadline,
    x1mhp_from_graph,
)


# --- X1MHP -----------------------------------------------------------------------

def k2_graph(edge: bool):
    g = np.zeros((2, 2), dtype=bool)
    if edge:
        g[0, 1] = g[1, 0] = True
    return g


def test_x1mhp_every_sensor_has_one_packet():
    inst = x1mhp_from_graph(k2_graph(True))
    assert inst.cluster.n_sensors == 12
    assert (inst.cluster.packets == 1).all()


def test_x1mhp_structure():
    inst = x1mhp_from_graph(k2_graph(True))
    c = inst.cluster
    for b in range(2):
        assert c.can_hear(-1, inst.s(b))  # HEAD hears s_b
        assert c.can_hear(-1, inst.u(b))
        assert c.can_hear(-1, inst.up(b))
        assert not c.can_hear(-1, inst.sp(b))
        assert c.can_hear(inst.up(b), inst.upp(b))
        assert c.can_hear(inst.upp(b), inst.uppp(b))


def test_x1mhp_deadline_formula():
    assert x1mhp_deadline(1) == 9
    assert x1mhp_deadline(2) == 17


def test_canonical_schedule_valid_and_meets_deadline():
    g = k2_graph(True)
    inst = x1mhp_from_graph(g)
    hp = find_hamiltonian_path(g)
    sched = canonical_x1mhp_schedule(inst, hp)
    sched.validate(list(RequestPool(inst.routing_plan())), inst.oracle)
    assert sched.makespan() == inst.deadline


def test_canonical_schedule_k1():
    g = np.zeros((1, 1), dtype=bool)
    inst = x1mhp_from_graph(g)
    sched = canonical_x1mhp_schedule(inst, [0])
    sched.validate(list(RequestPool(inst.routing_plan())), inst.oracle)
    assert sched.makespan() == 9


def test_forward_direction_hp_implies_deadline_met():
    g = k2_graph(True)
    inst = x1mhp_from_graph(g)
    assert feasible_within(
        inst.routing_plan(), inst.oracle, inst.deadline, max_requests=24
    )


def test_documented_leak_no_hp_still_meets_deadline():
    """REPRODUCTION FINDING (see repro/hardness/x1mhp.py docstring): under
    link-level compatibility the published Thm. 3 gadget does NOT force a
    Hamiltonian path at deadline 8k+1 — the edge-free 2-vertex graph has no
    HP yet a 17-slot schedule exists.  This test pins the observed behavior
    so any future gadget repair must consciously revisit it."""
    g = k2_graph(False)
    assert find_hamiltonian_path(g) is None
    inst = x1mhp_from_graph(g)
    assert feasible_within(
        inst.routing_plan(), inst.oracle, inst.deadline, max_requests=24
    )


def test_canonical_rejects_bad_path():
    inst = x1mhp_from_graph(k2_graph(True))
    with pytest.raises(ValueError):
        canonical_x1mhp_schedule(inst, [0])


# --- CPAR -------------------------------------------------------------------------

def test_cpar_structure_fig6():
    inst = cpar_from_partition([3, 2, 1, 2])
    c = inst.cluster
    assert c.n_sensors == 10
    assert c.first_level_sensors() == [0, 1]
    # each branch's first chain node hears both S1 and S2
    for chain in inst.branch_nodes:
        assert c.can_hear(0, chain[0]) and c.can_hear(1, chain[0])
        for a, b in zip(chain, chain[1:]):
            assert c.can_hear(a, b)
    assert inst.threshold == 10.0


def test_cpar_yes_instance_meets_threshold():
    values = [3, 2, 1, 2]
    inst = cpar_from_partition(values)
    left, right = find_partition(values)
    partition = sectors_from_subsets(inst, left, right)
    assert partition.max_pseudo_rate() <= inst.threshold
    # certificate extraction returns an equal-sum split
    back_left, back_right = subsets_from_sectors(inst, partition)
    assert sum(values[i] for i in back_left) == sum(values[i] for i in back_right)


def test_cpar_no_instance_exceeds_threshold():
    for values in ([5, 3, 1], [1, 1, 6], [2, 2, 2, 7]):
        assert not has_partition(values)
        inst = cpar_from_partition(values)
        best, _ = brute_force_min_pseudo_rate(inst)
        assert best > inst.threshold


def test_cpar_equivalence_sweep():
    """min over branch assignments meets B iff Partition is a yes-instance."""
    rng = np.random.default_rng(0)
    for _ in range(8):
        values = [int(v) for v in rng.integers(1, 7, size=int(rng.integers(2, 6)))]
        inst = cpar_from_partition(values)
        best, _ = brute_force_min_pseudo_rate(inst)
        assert (best <= inst.threshold) == has_partition(values)


def test_cpar_validation():
    with pytest.raises(ValueError):
        cpar_from_partition([])
    with pytest.raises(ValueError):
        cpar_from_partition([0, 1])
    inst = cpar_from_partition([2, 2])
    with pytest.raises(ValueError):
        sectors_from_subsets(inst, [0], [0, 1])


def test_cpar_threshold_formula():
    assert cpar_threshold([3, 2, 1, 2]) == 10.0
    assert cpar_threshold([1]) == 3.0


def test_subsets_from_sectors_requires_two():
    from repro.core import Sector, SectorPartition
    from repro.topology import HEAD

    inst = cpar_from_partition([2, 2])
    parent = {0: HEAD, 1: HEAD}
    for chain in inst.branch_nodes:
        parent[chain[0]] = 0
        for a, b in zip(chain, chain[1:]):
            parent[b] = a
    single = SectorPartition(
        cluster=inst.cluster,
        sectors=[
            Sector(sensors=sorted(parent), roots=[0, 1], parent=parent)
        ],
    )
    with pytest.raises(ValueError, match="two sectors"):
        subsets_from_sectors(inst, single)
