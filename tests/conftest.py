"""Shared fixtures: canonical clusters, oracles and deployments."""

from __future__ import annotations

import numpy as np
import pytest

from repro.interference import TabulatedOracle
from repro.mac.base import geometric_oracle
from repro.topology import HEAD, Cluster, uniform_square


@pytest.fixture
def fig2_cluster() -> Cluster:
    """The paper's Fig. 2: s0 relays for s1; s2 is head-adjacent."""
    return Cluster.from_edges(
        3, sensor_edges=[(0, 1)], head_links=[0, 2], packets=[0, 1, 1]
    )


@pytest.fixture
def fig2_oracle() -> TabulatedOracle:
    return TabulatedOracle(
        compatible_pairs=[((1, 0), (2, HEAD))],
        valid_links=[(1, 0), (0, HEAD), (2, HEAD)],
        max_group_size=2,
    )


@pytest.fixture
def chain_cluster() -> Cluster:
    """A 4-sensor chain s3-s2-s1-s0-head, one packet each."""
    return Cluster.from_edges(
        4,
        sensor_edges=[(0, 1), (1, 2), (2, 3)],
        head_links=[0],
        packets=[1, 1, 1, 1],
    )


@pytest.fixture
def star_cluster() -> Cluster:
    """Five head-adjacent sensors (single-hop polling case)."""
    return Cluster.from_edges(
        5, sensor_edges=[], head_links=[0, 1, 2, 3, 4], packets=[1, 2, 0, 1, 1]
    )


def permissive_oracle(max_group_size: int = 2) -> "AllCompatibleOracle":
    return AllCompatibleOracle(max_group_size=max_group_size)


class AllCompatibleOracle(TabulatedOracle):
    """Every node-disjoint group is compatible (structural limits only)."""

    def __init__(self, max_group_size: int = 2):
        super().__init__(compatible_pairs=[], valid_links=None, max_group_size=max_group_size)

    def _single_ok(self, link):
        return True

    def _pair_compatible(self, a, b):
        return True


@pytest.fixture
def all_compatible():
    return AllCompatibleOracle()


@pytest.fixture
def geo_cluster_oracle():
    """A 12-sensor geometric cluster with its physical oracle."""
    dep = uniform_square(12, seed=5)
    geo = Cluster.from_deployment(dep)
    oracle, cluster = geometric_oracle(geo)
    return cluster, oracle
