"""Tests for the polling MAC over the event-driven PHY."""

import numpy as np
import pytest

from repro.mac import MacTimings, build_cluster_phy, geometric_oracle, phy_truth_oracle
from repro.mac.pollmac import PollingClusterMac
from repro.net import PollingSimConfig, cluster_from_phy, run_polling_simulation
from repro.sim import Simulator
from repro.topology import Cluster, line, uniform_square


def small_run(**overrides) -> "PollingSimResult":
    cfg = dict(n_sensors=8, rate_bps=20.0, cycle_length=4.0, n_cycles=4, seed=2)
    cfg.update(overrides)
    return run_polling_simulation(PollingSimConfig(**cfg))


def test_all_eligible_packets_delivered():
    res = small_run()
    assert res.throughput_ratio == 1.0
    assert res.mac.packets_failed == 0
    assert res.packets_delivered > 0


def test_sensors_sleep_most_of_the_time():
    res = small_run()
    assert 0.0 < res.mean_active_fraction < 0.2


def test_duty_cycle_stats_recorded():
    res = small_run()
    assert len(res.mac.cycle_stats) == 4
    for s in res.mac.cycle_stats:
        assert s.duty_time > 0
        assert s.ack_slots > 0


def test_delivered_packets_are_genuine():
    """Every delivered AppPacket was really generated at its origin sensor."""
    res = small_run()
    delivered = res.mac.delivered_packets()
    assert len({(p.origin, p.seq) for p in delivered}) == len(delivered)  # no dupes
    for p in delivered:
        assert 0 <= p.origin < 8
        assert p.created <= res.elapsed


def test_lossy_channel_still_delivers_everything():
    res = small_run(frame_error_rate=0.15, n_cycles=5)
    # re-polling absorbs the loss; only retry-limit exhaustion may fail
    assert res.throughput_ratio >= 0.99
    retx = sum(s.retransmissions for s in res.mac.cycle_stats)
    assert retx > 0  # losses actually happened and were re-polled


def test_heavy_load_saturates_but_catches_up():
    res = small_run(rate_bps=600.0, cycle_length=2.0, n_cycles=6)
    assert res.duty_fraction() > 0.3
    assert res.throughput_ratio == 1.0


def test_phy_truth_oracle_matches_medium_single_links():
    sim = Simulator()
    dep = uniform_square(10, seed=4)
    cluster = Cluster.from_deployment(dep)
    phy = build_cluster_phy(sim, cluster)
    oracle = phy_truth_oracle(phy)
    hearing = phy.medium.hearing_matrix()
    n = phy.n_sensors
    for i in range(n):
        for j in range(n):
            if i != j:
                assert oracle.single_link_ok((j, i)) == hearing[i, j]


def test_geometric_oracle_equals_des_oracle():
    """The schedule-level experiments and the DES agree on compatibility."""
    dep = uniform_square(10, seed=4)
    geo = Cluster.from_deployment(dep)
    sim = Simulator()
    phy = build_cluster_phy(sim, geo)
    des_oracle = phy_truth_oracle(phy)
    ana_oracle, discovered = geometric_oracle(geo)
    n = geo.n_sensors
    # identical connectivity
    hearing = phy.medium.hearing_matrix()
    assert np.array_equal(discovered.hears, hearing[:n, :n])
    assert np.array_equal(discovered.head_hears, hearing[n, :n])
    # identical pair answers on actual links
    links = [(j, i) for i in range(n) for j in range(n) if discovered.hears[i, j]]
    links += [(-1 if False else s, -1) for s in discovered.first_level_sensors()]
    from itertools import combinations

    for a, b in list(combinations(links, 2))[:300]:
        if len({a[0], a[1], b[0], b[1]}) < 4:
            continue
        assert des_oracle.compatible([a, b]) == ana_oracle.compatible([a, b])


def test_des_duty_time_matches_slot_model():
    """Cross-validation: event-driven duty time == slot count x slot time."""
    res = small_run(seed=3)
    timings = res.config.timings
    sizes = __import__("repro.radio.packet", fromlist=["DEFAULT_SIZES"]).DEFAULT_SIZES
    ack_slot = timings.poll_slot_time(res.config.bitrate, sizes, sizes.ack_report)
    data_slot = timings.poll_slot_time(res.config.bitrate, sizes, sizes.data)
    for s in res.mac.cycle_stats:
        modeled = s.ack_slots * ack_slot + s.data_slots * data_slot
        # duty also includes wakeup/sleep broadcasts: small additive slack
        assert s.duty_time == pytest.approx(modeled, abs=0.02)


def test_line_cluster_pipeline_over_phy():
    """A 3-hop chain forces genuine relaying through the DES."""
    dep = line(3, spacing=30.0, comm_range=35.0)
    res = run_polling_simulation(
        PollingSimConfig(n_sensors=3, rate_bps=20.0, cycle_length=4.0, n_cycles=3, seed=0),
        deployment=dep,
    )
    assert res.throughput_ratio == 1.0
    # the far sensor's packets took 3 hops: relays transmitted more than they own
    sent = [a.packets_sent for a in res.mac.sensors]
    assert sent[0] > sent[2]


# --- sector operation over the DES (Sec. IV executed) ---------------------------

def test_sector_mode_delivers_everything():
    res = small_run(use_sectors=True, n_cycles=5)
    assert res.throughput_ratio == 1.0
    assert res.mac.partition is not None
    assert res.mac.partition.n_sectors >= 2


def test_sector_mode_reduces_active_time_under_load():
    plain = small_run(rate_bps=120.0, n_cycles=5, n_sensors=14, seed=4)
    sect = small_run(rate_bps=120.0, n_cycles=5, n_sensors=14, seed=4, use_sectors=True)
    assert sect.throughput_ratio == 1.0
    assert sect.mean_active_fraction < plain.mean_active_fraction


def test_sector_mode_survives_overrunning_cycles():
    res = small_run(rate_bps=500.0, cycle_length=2.0, n_cycles=5, use_sectors=True)
    assert res.throughput_ratio == 1.0


def test_sector_mode_with_losses():
    res = small_run(use_sectors=True, frame_error_rate=0.1, n_cycles=5)
    assert res.throughput_ratio >= 0.99
