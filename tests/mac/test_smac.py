"""Tests for the S-MAC + AODV baseline behavior."""

import numpy as np
import pytest

from repro.net import SmacSimConfig, run_smac_simulation
from repro.topology import line


def smac_run(**overrides):
    cfg = dict(
        n_sensors=8, rate_bps=10.0, duty_cycle=1.0, duration=25.0, warmup=5.0, seed=1
    )
    cfg.update(overrides)
    return run_smac_simulation(SmacSimConfig(**cfg))


def test_delivers_most_at_low_load_full_duty():
    res = smac_run()
    assert res.packets_delivered > 0
    assert res.delivery_ratio > 0.6


def test_duty_cycle_caps_active_time():
    low = smac_run(duty_cycle=0.3, rate_bps=3.0)
    # active fraction tracks the duty setting (handshakes may spill a bit)
    assert 0.25 <= float(low.active_fraction.mean()) <= 0.55
    full = smac_run(duty_cycle=1.0, rate_bps=3.0)
    assert float(full.active_fraction.mean()) > 0.95


def test_throughput_degrades_with_duty_cycle():
    full = smac_run(rate_bps=20.0)
    low = smac_run(rate_bps=20.0, duty_cycle=0.3)
    assert low.throughput_bps < full.throughput_bps


def test_saturates_below_offered_at_high_load():
    # 20 sensors x 60 Bps = 1200 Bps total on a multi-hop topology: collisions
    # and AODV overhead keep S-MAC below the offered load even fully awake.
    res = smac_run(n_sensors=20, rate_bps=60.0, duration=30.0)
    assert res.throughput_bps < res.offered_bps * 0.95


def test_control_overhead_grows_with_load():
    light = smac_run(rate_bps=3.0)
    heavy = smac_run(rate_bps=30.0)
    assert heavy.control_frames > light.control_frames


def test_multihop_delivery_over_chain():
    dep = line(3, spacing=30.0, comm_range=35.0)
    res = run_smac_simulation(
        SmacSimConfig(
            n_sensors=3, rate_bps=10.0, duty_cycle=1.0, duration=40.0, warmup=5.0, seed=0
        ),
        deployment=dep,
    )
    # packets from the 3-hop-deep sensor made it via AODV relaying
    origins = {p.origin for p in res.net.sink.delivered}
    assert 2 in origins


def test_queue_drops_counted_under_overload():
    res = smac_run(rate_bps=120.0, duty_cycle=0.3, duration=30.0)
    drops = sum(n.dropped_queue + n.dropped_route for n in res.net.sensors)
    assert drops + res.packets_delivered <= res.packets_generated + 100
    assert res.delivery_ratio < 0.8


def test_deterministic_given_seed():
    a = smac_run(seed=9)
    b = smac_run(seed=9)
    assert a.packets_delivered == b.packets_delivered
    assert a.control_frames == b.control_frames


def test_overheard_unicast_rrep_not_forwarded():
    """Regression: a node overhearing someone else's unicast RREP must not
    process or re-forward it.  (An early build forwarded every decoded RREP,
    multiplying each reply through all neighbors into a ~40,000-frame storm
    that flattened throughput at every load.)"""
    from repro.mac.base import build_cluster_phy
    from repro.mac.smac import SmacNetwork, SmacParams
    from repro.radio.packet import Frame, FrameType
    from repro.routing.aodv import Rrep
    from repro.sim import Simulator
    from repro.topology import Cluster, line

    sim = Simulator()
    dep = line(3, spacing=30.0, comm_range=35.0)
    phy = build_cluster_phy(
        sim,
        Cluster.from_deployment(dep),
        sensor_range_m=35.0,
        homogeneous_head=True,
    )
    net = SmacNetwork(phy)
    bystander = net.nodes[2]
    before = bystander.control_tx + bystander.aodv.control_tx
    rrep = Frame(
        ftype=FrameType.AODV,
        src=0,
        dst=1,  # addressed to node 1, not node 2
        size_bytes=24,
        payload=Rrep(origin=5, dest=3, dest_seq=1, hop_count=0, lifetime=10.0),
    )
    bystander._on_frame(rrep, 1e-9)
    sim.run(until=1.0)
    assert bystander.control_tx + bystander.aodv.control_tx == before
    assert 3 not in bystander.aodv.routes  # didn't even learn from it
