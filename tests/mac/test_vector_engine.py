"""Unit regressions for the vector engine's bit-exactness plumbing.

The batch path's never-diverge contract (DESIGN.md §12) hangs on details
that are invisible to normal correctness testing — IEEE summation order,
fancy-vs-basic indexing, zero-dt handling.  These tests pin each one at
the unit level with inputs chosen so any reordering *visibly* changes the
last bits, catching "harmless" refactors (e.g. swapping ``ordered_sum``
for ``ndarray.sum``) long before a golden-fingerprint run would.
"""

import numpy as np
import pytest

from repro.mac.vector_engine import VectorRadioBank, _as_index, ordered_sum
from repro.radio.energy import EnergyMeter, EnergyParams, RadioState

# Magnitudes straddling ~2^53 in relative spread: the order in which these
# are added determines which low bits survive, so left-to-right and
# pairwise-tree accumulation give different float results.
ADVERSARIAL = [1e16, 1.0, -1e16, 1.0, 3.0, 1e-8, 7e7, -3.0, 1e16, 1e-8]


def _columns(n_radios=5, seed=0, repeats=30):
    # > 128 terms: numpy's pairwise-summation blocking only reassociates
    # above its block size, so shorter lists would sum sequentially and
    # the divergence test below would lose its teeth.
    rng = np.random.default_rng(seed)
    cols = []
    for base in ADVERSARIAL * repeats:
        cols.append(base * (1.0 + 0.1 * rng.standard_normal(n_radios)))
    return cols


def test_ordered_sum_matches_scalar_left_to_right():
    cols = _columns()
    got = ordered_sum(cols)
    for i in range(cols[0].size):
        acc = float(cols[0][i])
        for col in cols[1:]:
            acc = acc + float(col[i])  # one IEEE add per step, scalar order
        assert got[i] == acc
        assert float(got[i]).hex() == acc.hex()


def test_ordered_sum_diverges_from_pairwise_reduction():
    # The proof the test above has teeth: numpy's reduction reassociates
    # (pairwise summation), which rounds differently on this input.  If
    # this ever starts passing with equality, the adversarial input has
    # gone stale and the left-to-right test no longer guards anything.
    cols = _columns()
    ordered = ordered_sum(cols)
    # The tempting refactor: stack the columns and sum along the fast
    # axis.  That contiguous reduction is where numpy applies pairwise
    # (blocked) summation, so the last bits differ.
    stacked = np.ascontiguousarray(np.vstack(cols).T)
    pairwise = stacked.sum(axis=1)
    assert not np.array_equal(ordered, pairwise)


def test_ordered_sum_empty_and_ownership():
    assert ordered_sum([]) is None
    first = np.array([1.0, 2.0])
    out = ordered_sum([first])
    assert np.array_equal(out, first)
    out[0] = 99.0  # must be a copy, never a view into the cached column
    assert first[0] == 1.0


def test_as_index_contiguous_becomes_slice():
    idx = np.array([3, 4, 5, 6])
    out = _as_index(idx)
    assert out == slice(3, 7)
    base = np.arange(10) * 1.5
    assert np.array_equal(base[out], base[idx])


def test_as_index_noncontiguous_and_singleton_pass_through():
    gap = np.array([1, 2, 5])
    assert _as_index(gap) is gap
    single = np.array([4])
    assert _as_index(single) is single


def test_as_index_requires_sorted_input():
    # The contiguity check (last - first + 1 == size) is only meaningful on
    # sorted input: this permutation satisfies it yet is NOT the span
    # {1, 2, 3}.  Callers must sort first (see _GroupCache.t2_ix) — this
    # test documents the hazard so the precondition is never "simplified"
    # away.
    unsorted = np.array([1, 3, 2, 4, 5])
    out = _as_index(unsorted)
    assert isinstance(out, slice)  # the check passes...
    base = np.arange(10) * 2.0
    assert np.array_equal(base[out], np.sort(base[unsorted]))  # ...as a SET
    assert not np.array_equal(base[out], base[unsorted])  # ...not as a SEQ


class _StubTrx:
    """Just enough transceiver surface for VectorRadioBank."""

    def __init__(self, params, state, last_change, consumed):
        self.meter = EnergyMeter(params=params)
        self.meter.state = state
        self.meter.last_change = last_change
        self.meter.consumed_j = consumed
        self._listening = True
        self._listen_since = last_change
        self.frames_sent = 0
        self.frames_received = 0
        self.frames_garbled = 0


def test_bank_shift_replays_meter_bit_for_bit():
    # Heterogeneous power params + an awkward consumed_j offset so the
    # multiply-add rounding is exercised, not just zeros.
    radios = []
    meters = []
    for i in range(6):
        params = EnergyParams(idle_w=13.5e-3 * (1 + 0.013 * i))
        radios.append(_StubTrx(params, RadioState.IDLE, 0.1 + i * 1e-7, 0.3 + i * 0.07))
        ref = EnergyMeter(params=params)
        ref.state = RadioState.IDLE
        ref.last_change = 0.1 + i * 1e-7
        ref.consumed_j = 0.3 + i * 0.07
        meters.append(ref)

    bank = VectorRadioBank(radios)
    bank.load()
    from repro.mac.vector_engine import IDLE, RX

    t1 = 0.1 + 1.0 / 3.0  # not exactly representable: real rounding happens
    bank.shift(np.arange(6), t1, IDLE, RX)
    # dt == 0 second shift on radio 0: exact +0.0, same as the scalar
    # meter's else-branch (which skips the add entirely).
    bank.shift(np.array([0]), t1, RX, RX)
    bank.store()

    for i, (trx, ref) in enumerate(zip(radios, meters)):
        ref.change_state(RadioState.RX, t1)
        if i == 0:
            ref.change_state(RadioState.RX, t1)
        assert trx.meter.consumed_j.hex() == ref.consumed_j.hex()
        assert trx.meter.last_change == ref.last_change
        assert trx.meter.state is ref.state
        assert trx.meter.dwell_s == ref.dwell_s


def test_bank_shift_empty_index_is_noop():
    radios = [_StubTrx(EnergyParams(), RadioState.IDLE, 0.0, 0.0)]
    bank = VectorRadioBank(radios)
    bank.load()
    before = bank.consumed.copy()
    bank.shift(np.array([], dtype=np.int64), 5.0, 1, 2)
    assert np.array_equal(bank.consumed, before)


# -- scalar-fallback accounting ------------------------------------------------


def test_multicluster_fallbacks_counted_with_reason():
    """index_map PHYs request vector, run scalar, and say why."""
    from repro import obs
    from repro.net import MultiClusterConfig, run_multicluster_simulation

    tel = obs.Telemetry()
    with obs.use(tel):
        res = run_multicluster_simulation(
            MultiClusterConfig(n_cycles=2, seed=0, engine="vector")
        )
    for mac in res.macs:
        assert mac.vector_slots == 0
        assert set(mac.engine_fallbacks) == {"index_map"}
        assert mac.engine_fallbacks["index_map"] > 0
    assert "engine.scalar_fallback.index_map" in tel.metrics
    assert tel.metrics.counter("engine.scalar_fallback.index_map").value == sum(
        mac.engine_fallbacks["index_map"] for mac in res.macs
    )


def test_scalar_request_is_not_a_fallback():
    from repro.net import MultiClusterConfig, run_multicluster_simulation

    res = run_multicluster_simulation(
        MultiClusterConfig(n_cycles=2, seed=0, engine="scalar")
    )
    for mac in res.macs:
        assert mac.engine_fallbacks == {}
