"""Vector-vs-scalar engine parity: the never-diverge contract (DESIGN.md §12).

The batch slot engine is a pure reformulation of the scalar event path —
there is **no** input on which the two may legally differ.  This property
test holds that line across randomized seeds × fault regimes: for every
(seed, regime) cell both engines must produce the same per-radio energy
floats (bit-for-bit, compared as ``float.hex``), the same delivery counts,
and the same degradation metrics.

The regimes deliberately cover every code path with its own fallback or
cache-invalidation rule in the engine: clean static runs (pure batch),
crash plans (mid-run re-solve + roster change), churn (joins/leaves, bank
reloads, re-clustering), mobility + channel drift (geometry-cache
invalidation and live GE retuning), and frame-error loss (per-stream
Gilbert–Elliott draws inside the batch path).
"""

import hashlib
import json

import pytest

from repro.faults import (
    BurstyLinks,
    ChannelDrift,
    FaultPlan,
    Mobility,
    NodeCrash,
    NodeJoin,
    NodeLeave,
)
from repro.net.cluster_sim import PollingSimConfig, run_polling_simulation

CYCLE = 10.0


def _plan(regime: str, seed: int) -> FaultPlan:
    if regime == "static":
        return FaultPlan()
    if regime == "crash":
        # Crash node ids vary with the seed so different topologies lose
        # different roles (relay vs leaf).
        return FaultPlan(crashes=[NodeCrash(node=(seed * 7 + 1) % 12, at=20.3)])
    if regime == "churn":
        return FaultPlan(
            joins=[NodeJoin(at=1.5 * CYCLE, position=(90.0 + seed, 90.0))],
            leaves=[NodeLeave(node=(seed * 5 + 2) % 12, at=2.5 * CYCLE)],
        )
    if regime == "drift":
        return FaultPlan(
            bursty_links=BurstyLinks(loss_bad=0.4),
            channel_drift=ChannelDrift(period_s=3 * CYCLE),
            mobility=Mobility(speed_mps=0.4),
        )
    raise ValueError(regime)


def _fingerprint(cfg: PollingSimConfig) -> tuple[str, dict]:
    """Full-precision digest of everything the engines must agree on."""
    res = run_polling_simulation(cfg)
    n = res.phy.n_sensors
    deg = res.degradation
    payload = {
        # per-radio energies, bit-for-bit (the ISSUE's headline contract)
        "energies": [res.phy.trx(i).meter.consumed_j.hex() for i in range(n)],
        "head_energy": res.phy.trx(n).meter.consumed_j.hex(),
        # throughput
        "delivered": res.packets_delivered,
        "generated": res.packets_generated,
        "throughput_ratio": float(res.throughput_ratio).hex(),
        # degradation
        "failed": deg.failed,
        "delivery_ratio": float(deg.delivery_ratio).hex(),
        "coverage": float(deg.surviving_coverage).hex(),
        "blacklisted": sorted(deg.blacklisted),
        "repairs": deg.route_repairs,
        "elapsed": res.elapsed.hex(),
    }
    digest = hashlib.sha256(json.dumps(payload, sort_keys=True).encode()).hexdigest()
    slots = {"vector": res.mac.vector_slots, "scalar": res.mac.scalar_slots}
    return digest, slots


@pytest.mark.parametrize("regime", ["static", "crash", "churn", "drift"])
@pytest.mark.parametrize("seed", [0, 1, 5])
def test_engines_bit_identical(regime, seed):
    kwargs = dict(
        n_sensors=12,
        n_cycles=6,
        seed=seed,
        fault_plan=_plan(regime, seed),
        frame_error_rate=0.1 if regime == "static" and seed == 5 else 0.0,
    )
    if regime == "churn":
        kwargs["recluster"] = "staleness"
    vec, vec_slots = _fingerprint(PollingSimConfig(engine="vector", **kwargs))
    sca, sca_slots = _fingerprint(PollingSimConfig(engine="scalar", **kwargs))
    assert vec == sca, f"engines diverged on {regime}/seed{seed}"
    # The comparison must be meaningful: the scalar run took zero batch
    # slots, the vector run took at least some (eligibility can fall back
    # per-slot, but never for the entire run on these workloads).
    assert sca_slots["vector"] == 0
    assert vec_slots["vector"] > 0
