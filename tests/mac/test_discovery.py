"""Tests for radio-level discovery (Sec. V-A / V-B as a real protocol)."""

import numpy as np
import pytest

from repro.mac import build_cluster_phy
from repro.mac.discovery import DiscoveryProtocol
from repro.sim import Simulator
from repro.topology import Cluster, line, uniform_square


def discover(deployment):
    sim = Simulator()
    cluster = Cluster.from_deployment(deployment)
    phy = build_cluster_phy(sim, cluster, sensor_range_m=deployment.comm_range)
    proto = DiscoveryProtocol(phy)
    proc = proto.run()
    sim.run(until=60.0)
    assert not proc.alive, "discovery did not finish"
    return phy, proto.outcome


def test_discovery_matches_medium_truth():
    phy, outcome = discover(uniform_square(12, seed=3))
    truth = phy.medium.hearing_matrix()
    n = phy.n_sensors
    assert np.array_equal(outcome.hears, truth[:n, :n])
    assert np.array_equal(outcome.head_hears, truth[n, :n])


def test_discovery_chain_parents():
    phy, outcome = discover(line(4, spacing=30.0, comm_range=35.0))
    assert outcome.parent[0] == -1  # HEAD
    assert outcome.parent[1] == 0
    assert outcome.parent[2] == 1
    assert outcome.parent[3] == 2


def test_discovery_costs_linear_slots():
    phy, outcome = discover(uniform_square(10, seed=1))
    assert outcome.probe_slots == 10
    # one report poll per sensor plus relay hops: O(n) with a small constant
    assert outcome.report_slots <= 4 * 10


def test_discovered_cluster_routable():
    from repro.core import OnlinePollingScheduler
    from repro.mac import phy_truth_oracle
    from repro.routing import solve_min_max_load

    phy, outcome = discover(uniform_square(10, seed=2))
    cluster = outcome.cluster()
    assert cluster.is_connected()
    plan = solve_min_max_load(cluster).routing_plan()
    result = OnlinePollingScheduler.poll(plan, phy_truth_oracle(phy))
    assert result.pool.all_deleted()
