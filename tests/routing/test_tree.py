"""Tests for flow merging (DAG -> relay tree) and RelayTree structure."""

import numpy as np
import pytest

from repro.routing import RelayTree, merge_flow_to_tree, solve_min_max_load
from repro.routing.paths import validate_path
from repro.topology import HEAD, Cluster, uniform_square


def test_tree_validation_catches_cycles(fig2_cluster):
    with pytest.raises(ValueError):
        RelayTree(cluster=fig2_cluster, parent={0: 1, 1: 0})
    with pytest.raises(ValueError):
        RelayTree(cluster=fig2_cluster, parent={1: 2})  # 2 can't hear 1


def test_tree_paths_and_branches(chain_cluster):
    tree = RelayTree(cluster=chain_cluster, parent={0: HEAD, 1: 0, 2: 1, 3: 2})
    assert tree.path_from(3) == (3, 2, 1, 0, HEAD)
    assert tree.first_level_roots() == [0]
    assert tree.subtree(0) == [0, 1, 2, 3]
    assert tree.branches() == {0: [0, 1, 2, 3]}
    assert tree.loads().tolist() == [4, 3, 2, 1]


def test_merge_already_tree_is_identity(fig2_cluster):
    sol = solve_min_max_load(fig2_cluster)
    tree = merge_flow_to_tree(sol)
    assert tree.parent == {0: HEAD, 1: 0, 2: HEAD}


def test_merge_eliminates_all_splitting():
    for seed in range(6):
        dep = uniform_square(15, seed=seed)
        rng = np.random.default_rng(seed)
        c = Cluster.from_deployment(dep).with_packets(rng.integers(1, 4, size=15))
        sol = solve_min_max_load(c)
        tree = merge_flow_to_tree(sol)
        # every member has exactly one parent; paths are legal
        for s in tree.members:
            path = tree.path_from(s)
            validate_path(c, path)
        # all packet owners are in the tree
        for s in range(15):
            if c.packets[s] > 0:
                assert s in tree.parent


def test_merge_chooses_lighter_parent():
    """A splitting sensor must pick the onward chain with lower max load."""
    # Sensor 4 splits between gateways 0 (heavily loaded) and 1 (lightly).
    c = Cluster.from_edges(
        5,
        sensor_edges=[(0, 2), (0, 3), (0, 4), (1, 4)],
        head_links=[0, 1],
        packets=[0, 0, 1, 1, 2],
    )
    sol = solve_min_max_load(c)
    tree = merge_flow_to_tree(sol)
    # however the flow split, after merging sensor 4 should route via
    # gateway 1 (gateway 0 already carries sensors 2 and 3).
    if 4 in tree.parent and len(sol.next_hop_flows().get(4, {})) > 1:
        assert tree.parent[4] == 1


def test_tree_routing_plan_loads_consistent():
    dep = uniform_square(12, seed=9)
    c = Cluster.from_deployment(dep)
    sol = solve_min_max_load(c)
    tree = merge_flow_to_tree(sol)
    plan = tree.routing_plan()
    assert (plan.loads() == tree.loads()).all()


def test_tree_children(chain_cluster):
    tree = RelayTree(cluster=chain_cluster, parent={0: HEAD, 1: 0, 2: 1, 3: 2})
    assert tree.children(HEAD) == [0]
    assert tree.children(0) == [1]
    assert tree.children(3) == []


def test_merged_tree_load_bounded():
    """Merging can raise loads, but never beyond the total packet count."""
    for seed in range(4):
        dep = uniform_square(14, seed=seed)
        c = Cluster.from_deployment(dep)
        sol = solve_min_max_load(c)
        tree = merge_flow_to_tree(sol)
        assert tree.loads().max() <= c.total_packets
        assert tree.loads().max() >= sol.max_load  # can't beat the optimum
