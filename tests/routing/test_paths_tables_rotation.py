"""Tests for RoutingPlan, source routing / one-hop tables, path rotation."""

import numpy as np
import pytest

from repro.routing import (
    OneHopTables,
    PathRotator,
    RoutingPlan,
    SourceRouteHeader,
    build_one_hop_tables,
    route_packet,
    solve_min_max_load,
    source_route_overhead_bytes,
    validate_path,
)
from repro.topology import HEAD, Cluster, uniform_square


# --- RoutingPlan ---------------------------------------------------------------

def test_plan_validates_paths(fig2_cluster):
    with pytest.raises(ValueError):
        RoutingPlan(cluster=fig2_cluster, paths={1: (1, 2, HEAD)})  # 2 can't hear 1
    with pytest.raises(ValueError):
        RoutingPlan(cluster=fig2_cluster, paths={1: (0, HEAD)})  # must start at owner
    with pytest.raises(ValueError):
        RoutingPlan(cluster=fig2_cluster, paths={1: (1, 0)})  # must end at head


def test_validate_path_rejects_loops(chain_cluster):
    with pytest.raises(ValueError):
        validate_path(chain_cluster, (2, 1, 2, 1, 0, HEAD))
    with pytest.raises(ValueError):
        validate_path(chain_cluster, (0, HEAD, HEAD))


def test_plan_loads_and_dependents(chain_cluster):
    plan = RoutingPlan(
        cluster=chain_cluster,
        paths={
            0: (0, HEAD),
            1: (1, 0, HEAD),
            2: (2, 1, 0, HEAD),
            3: (3, 2, 1, 0, HEAD),
        },
    )
    assert plan.loads().tolist() == [4, 3, 2, 1]
    assert plan.dependents(0) == [1, 2, 3]
    assert plan.dependents(3) == []
    assert plan.hop_count(3) == 4
    assert plan.max_hop_count() == 4
    assert plan.first_level_sensor_of(3) == 0


def test_plan_loads_respect_packet_counts(fig2_cluster):
    c = fig2_cluster.with_packets([0, 3, 2])
    plan = RoutingPlan(cluster=c, paths={1: (1, 0, HEAD), 2: (2, HEAD)})
    assert plan.loads().tolist() == [3, 3, 2]
    assert plan.max_load() == 3


def test_used_links(fig2_cluster):
    plan = RoutingPlan(cluster=fig2_cluster, paths={1: (1, 0, HEAD), 2: (2, HEAD)})
    assert plan.used_links() == [(0, HEAD), (1, 0), (2, HEAD)]


def test_subplan(chain_cluster):
    plan = RoutingPlan(
        cluster=chain_cluster,
        paths={s: tuple(range(s, -1, -1)) + (HEAD,) for s in range(4)},
    )
    sub = plan.subplan([1, 3])
    assert set(sub.paths) == {1, 3}


# --- one-hop tables vs source routing -------------------------------------------

def test_tables_match_source_routes_everywhere():
    for seed in range(4):
        dep = uniform_square(12, seed=seed)
        c = Cluster.from_deployment(dep)
        plan = solve_min_max_load(c).routing_plan()
        tables = build_one_hop_tables(plan)
        for origin, path in plan.paths.items():
            assert tuple(route_packet(origin, plan, tables)) == path


def test_source_route_header_advance():
    header = SourceRouteHeader.for_path((3, 1, 0, HEAD))
    assert header.next_hop() == 1
    header = header.advance()
    assert header.next_hop() == 0
    header = header.advance()
    assert header.next_hop() == HEAD
    header = header.advance()
    with pytest.raises(ValueError):
        header.next_hop()


def test_table_storage_is_one_entry_per_origin(chain_cluster):
    plan = RoutingPlan(
        cluster=chain_cluster,
        paths={s: tuple(range(s, -1, -1)) + (HEAD,) for s in range(4)},
    )
    tables = build_one_hop_tables(plan)
    # s0 forwards for all four origins (itself + 3 dependents)
    assert tables.entries_at(0) == 4
    assert tables.entries_at(3) == 1


def test_conflicting_next_hops_rejected(fig2_cluster):
    tables = OneHopTables(tables={0: {1: HEAD}})
    assert tables.next_hop(0, 1) == HEAD
    with pytest.raises(KeyError):
        tables.next_hop(0, 99)


def test_source_route_overhead(fig2_cluster):
    plan = RoutingPlan(cluster=fig2_cluster, paths={1: (1, 0, HEAD), 2: (2, HEAD)})
    overhead = source_route_overhead_bytes(plan, bytes_per_hop=2)
    assert overhead == {1: 4, 2: 2}


# --- multiple-path rotation (Sec. V-D) --------------------------------------------

def test_rotation_exact_proportions():
    """Paper's example: 2 units on path 1, 1 on path 2 -> 2:1 cycle usage."""
    c = Cluster.from_edges(
        4,
        sensor_edges=[(0, 2), (1, 2), (0, 3), (1, 3)],
        head_links=[0, 1],
        packets=[0, 0, 3, 0],
    )
    sol = solve_min_max_load(c)
    rot = PathRotator(sol)
    alternatives = sol.flow_paths[2]
    if len(alternatives) >= 2:
        total_units = sum(u for _, u in alternatives)
        for _ in range(total_units * 4):
            rot.next_cycle()
        counts = rot.usage_counts()[2]
        for (path, units), used in zip(alternatives, counts):
            assert used == 4 * units  # exact quota honored


def test_rotation_average_load_converges_to_flow_loads():
    dep = uniform_square(12, seed=6)
    rng = np.random.default_rng(6)
    c = Cluster.from_deployment(dep).with_packets(rng.integers(1, 4, size=12))
    sol = solve_min_max_load(c)
    cycles = 60
    rot = PathRotator(sol)
    acc = np.zeros(12, dtype=np.int64)
    for _ in range(cycles):
        acc += rot.next_cycle().loads()
    avg = acc / cycles
    # long-run average load approaches the flow's balanced loads
    assert np.all(np.abs(avg - sol.loads) <= sol.max_load * 0.51 + 1)


def test_rotation_single_path_sensors_never_switch(fig2_cluster):
    sol = solve_min_max_load(fig2_cluster)
    rot = PathRotator(sol)
    first = rot.next_cycle().paths
    for _ in range(5):
        assert rot.next_cycle().paths == first
