"""Rotation and backup routing under faults (survivability satellites).

Path rotation runs on whatever solution is current; after a route repair
that must be the repaired solution — so no rotated per-cycle plan may ever
route through a node the head has blacklisted, no matter which alternative
the round-robin picks.  Likewise the backup routes recomputed after a
repair must avoid the dead nodes entirely.  And when repairs cascade, each
cut-off sensor's demand is dropped exactly once.
"""

import numpy as np
import pytest

from repro.routing import (
    PathRotator,
    compute_backup_routes,
    merge_dropped_demand,
    repair_routing,
    solve_min_max_load,
)
from repro.metrics import reconcile_dropped_demand
from repro.topology import Cluster, uniform_square


def _random_cluster(seed: int, n: int = 20) -> Cluster:
    dep = uniform_square(n, seed=seed, side=150.0, comm_range=60.0)
    return Cluster.from_deployment(dep)


def _pick_relay(solution) -> int | None:
    """A node that actually carries someone else's traffic."""
    for sensor, bundles in sorted(solution.flow_paths.items()):
        for path, _ in bundles:
            if len(path) > 2:
                return int(path[1])
    return None


@pytest.mark.parametrize("seed", [1, 4, 9])
def test_rotated_plans_never_route_through_blacklisted(seed):
    cluster = _random_cluster(seed)
    baseline = solve_min_max_load(cluster.with_packets(np.maximum(cluster.packets, 1)))
    dead = _pick_relay(baseline)
    if dead is None:
        pytest.skip("all-direct topology: nothing to blacklist")
    result = repair_routing(
        cluster.with_packets(np.maximum(cluster.packets, 1)), {dead}
    )
    rotator = PathRotator(result.solution)
    # Cover every rotation offset: total units bounds the rotation period.
    cycles = sum(
        units
        for bundles in result.solution.flow_paths.values()
        for _, units in bundles
    )
    for _ in range(max(cycles, 1) * 2):
        plan = rotator.next_cycle()
        for sensor, path in plan.paths.items():
            assert dead not in path, (
                f"cycle {rotator.cycle_count}: sensor {sensor} rotated onto "
                f"{path} through blacklisted node {dead}"
            )


@pytest.mark.parametrize("seed", [1, 4, 9])
def test_repaired_backups_avoid_dead_nodes(seed):
    cluster = _random_cluster(seed)
    base = cluster.with_packets(np.maximum(cluster.packets, 1))
    baseline = solve_min_max_load(base)
    dead = _pick_relay(baseline)
    if dead is None:
        pytest.skip("all-direct topology: nothing to kill")
    result = repair_routing(base, {dead})
    routes = compute_backup_routes(result.solution, k=2)
    for sensor, backups in routes.backups.items():
        for path in backups:
            assert dead not in path, (
                f"backup {path} for sensor {sensor} runs through dead node {dead}"
            )


def test_rotation_covers_exactly_the_served_sensors(chain_cluster):
    # Kill the chain's mid relay: downstream sensors become uncovered and
    # must vanish from every rotated plan instead of keeping a stale path.
    result = repair_routing(chain_cluster, {1})
    rotator = PathRotator(result.solution)
    plan = rotator.next_cycle()
    assert set(plan.paths) == set(result.solution.flow_paths)
    for uncovered in result.uncovered:
        assert uncovered not in plan.paths


def test_cascading_repairs_drop_each_sensor_once(chain_cluster):
    # chain: 2 -> 1 -> 0 -> head.  Killing 1 strands 2; killing 0 next
    # strands nobody new (2 is already stranded, 1 already dead) — but 2
    # reappears in the second repair's dropped_demand.  The merge must
    # attribute its demand to the first repair only.
    first = repair_routing(chain_cluster, {1})
    second = repair_routing(chain_cluster, {0, 1})
    assert 2 in first.dropped_demand and 2 in second.dropped_demand
    merged = merge_dropped_demand([first, second])
    assert merged[2] == first.dropped_demand[2]
    assert sum(merged.values()) < first.dropped_packets + second.dropped_packets


def test_reconcile_dropped_demand_counts_first_repair_only():
    # Simulated mac.repair_log from two consecutive repairs both listing
    # sensor 2 (pre-fix logs did exactly this): counted once, first value.
    log = [
        {"time": 10.0, "dropped_pending": {2: 3}},
        {"time": 20.0, "dropped_pending": {2: 5, 7: 1}},
    ]
    merged = reconcile_dropped_demand(log)
    assert merged == {2: 3, 7: 1}


def test_reconcile_dropped_demand_empty_log():
    assert reconcile_dropped_demand([]) == {}
    assert reconcile_dropped_demand([{"time": 1.0}]) == {}
