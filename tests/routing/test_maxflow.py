"""Max-flow unit tests, cross-validated against networkx."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.routing import INF, FlowNetwork


def test_simple_chain_bottleneck():
    g = FlowNetwork(4)
    g.add_edge(0, 1, 3)
    g.add_edge(1, 2, 2)
    g.add_edge(2, 3, 5)
    assert g.max_flow(0, 3) == 2


def test_parallel_paths_sum():
    g = FlowNetwork(4)
    g.add_edge(0, 1, 3)
    g.add_edge(1, 3, 3)
    g.add_edge(0, 2, 4)
    g.add_edge(2, 3, 4)
    assert g.max_flow(0, 3) == 7


def test_classic_crossing_network():
    # The textbook example needing the residual (reverse) edge.
    g = FlowNetwork(4)
    g.add_edge(0, 1, 1)
    g.add_edge(0, 2, 1)
    g.add_edge(1, 2, 1)
    g.add_edge(1, 3, 1)
    g.add_edge(2, 3, 1)
    assert g.max_flow(0, 3) == 2


def test_disconnected_is_zero():
    g = FlowNetwork(4)
    g.add_edge(0, 1, 5)
    g.add_edge(2, 3, 5)
    assert g.max_flow(0, 3) == 0


def test_infinite_capacity_edges():
    g = FlowNetwork(3)
    g.add_edge(0, 1, INF)
    g.add_edge(1, 2, 7)
    assert g.max_flow(0, 2) == 7


def test_edge_flow_conservation_and_capacity():
    g = FlowNetwork(5)
    edges = [(0, 1, 4), (0, 2, 3), (1, 3, 3), (2, 3, 2), (1, 2, 2), (3, 4, 6)]
    ids = [g.add_edge(u, v, c) for u, v, c in edges]
    total = g.max_flow(0, 4)
    assert total == 5
    # capacity respected
    for eid, (_, _, cap) in zip(ids, edges):
        assert 0 <= g.edge_flow(eid) <= cap
    # conservation at interior nodes
    for node in (1, 2, 3):
        inflow = sum(
            g.edge_flow(eid)
            for eid, (u, v, _) in zip(ids, edges)
            if v == node
        )
        outflow = sum(
            g.edge_flow(eid)
            for eid, (u, v, _) in zip(ids, edges)
            if u == node
        )
        assert inflow == outflow


def test_validation():
    g = FlowNetwork(2)
    with pytest.raises(ValueError):
        g.add_edge(0, 5, 1)
    with pytest.raises(ValueError):
        g.add_edge(0, 1, -1)
    with pytest.raises(ValueError):
        g.max_flow(0, 0)
    with pytest.raises(ValueError):
        FlowNetwork(0)


def test_reset_flow_allows_resolve():
    g = FlowNetwork(3)
    e = g.add_edge(0, 1, 5)
    g.add_edge(1, 2, 5)
    assert g.max_flow(0, 2) == 5
    g.set_capacity(e, 2)
    g.reset_flow()
    assert g.max_flow(0, 2) == 2


@st.composite
def random_flow_instance(draw):
    n = draw(st.integers(3, 8))
    n_edges = draw(st.integers(1, 20))
    edges = []
    for _ in range(n_edges):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u == v:
            continue
        cap = draw(st.integers(0, 12))
        edges.append((u, v, cap))
    return n, edges


@given(random_flow_instance())
@settings(max_examples=60, deadline=None)
def test_matches_networkx_on_random_graphs(instance):
    n, edges = instance
    ours = FlowNetwork(n)
    g = nx.DiGraph()
    g.add_nodes_from(range(n))
    for u, v, cap in edges:
        ours.add_edge(u, v, cap)
        if g.has_edge(u, v):
            g[u][v]["capacity"] += cap
        else:
            g.add_edge(u, v, capacity=cap)
    expected = nx.maximum_flow_value(g, 0, n - 1) if g.number_of_edges() else 0
    assert ours.max_flow(0, n - 1) == expected
