"""ISSUE-2 fast-path tests: Dinic vs Edmonds-Karp, warm vs cold engines.

The contract under test (see DESIGN.md §7): every combination of
``engine`` / ``method`` / ``search`` returns a bit-for-bit identical
:class:`FlowSolution`, the warm engine builds its network exactly once,
and the cold engine no longer pays the historical duplicate solve.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.routing import FlowNetwork, solve_min_max_load
from repro.routing.minmax import _WarmEngine, _feasible
from repro.topology import Cluster, uniform_square


@st.composite
def random_flow_instance(draw):
    n = draw(st.integers(3, 9))
    n_edges = draw(st.integers(1, 24))
    edges = []
    for _ in range(n_edges):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u == v:
            continue
        cap = draw(st.integers(0, 12))
        edges.append((u, v, cap))
    return n, edges


def _twin_networks(n, edges):
    a, b = FlowNetwork(n), FlowNetwork(n)
    for u, v, cap in edges:
        a.add_edge(u, v, cap)
        b.add_edge(u, v, cap)
    return a, b


@given(random_flow_instance())
@settings(max_examples=60, deadline=None)
def test_dinic_matches_edmonds_karp(instance):
    n, edges = instance
    ek, dinic = _twin_networks(n, edges)
    assert ek.max_flow(0, n - 1) == dinic.max_flow(0, n - 1, method="dinic")


@given(random_flow_instance(), st.integers(0, 10))
@settings(max_examples=40, deadline=None)
def test_limited_solve_reaches_min_of_limit_and_max(instance, limit):
    n, edges = instance
    ek, limited = _twin_networks(n, edges)
    full = ek.max_flow(0, n - 1)
    got = limited.max_flow(0, n - 1, method="dinic", limit=limit)
    assert got == min(limit, full) or (got >= limit and got <= full)


def test_incremental_augment_after_capacity_raise():
    """The warm-start invariant on a concrete network: raising a capacity
    keeps the existing flow, and re-solving only adds the increment."""
    g = FlowNetwork(3)
    mid = g.add_edge(0, 1, 2)
    g.add_edge(1, 2, 10)
    assert g.max_flow(0, 2, method="dinic") == 2
    g.set_capacity(mid, 7)
    assert g.edge_flow(mid) == 2  # prior flow untouched
    assert g.max_flow(0, 2, method="dinic") == 5  # only the increment
    assert g.flow_value(0) == 7


def test_snapshot_restore_roundtrip():
    g = FlowNetwork(3)
    g.add_edge(0, 1, 4)
    g.add_edge(1, 2, 4)
    g.max_flow(0, 2)
    snap = g.snapshot_flow()
    g.reset_flow()
    assert g.flow_value(0) == 0
    g.restore_flow(snap)
    assert g.flow_value(0) == 4
    with pytest.raises(ValueError):
        g.restore_flow([0])


def test_invalid_method_rejected():
    g = FlowNetwork(2)
    g.add_edge(0, 1, 1)
    with pytest.raises(ValueError):
        g.max_flow(0, 1, method="push-relabel")
    with pytest.raises(ValueError):
        solve_min_max_load(
            Cluster.from_edges(2, [], [0, 1]), engine="warm", method="magic"
        )
    with pytest.raises(ValueError):
        solve_min_max_load(Cluster.from_edges(2, [], [0, 1]), engine="tepid")


def _random_cluster(seed: int, n: int = 10) -> Cluster:
    dep = uniform_square(n, seed=seed)
    rng = np.random.default_rng(seed)
    packets = rng.integers(0, 4, size=n)
    c = Cluster.from_deployment(dep).with_packets(packets)
    c.energy[:] = rng.uniform(0.3, 1.0, size=n)
    return c


@given(st.integers(0, 25), st.booleans(), st.sampled_from(["binary", "linear"]))
@settings(max_examples=20, deadline=None)
def test_engines_and_methods_bit_identical(seed, energy_aware, search):
    if energy_aware and search == "linear":
        search = "binary"  # the energy-aware search is candidate-bisection only
    c = _random_cluster(seed)
    reference = None
    for engine in ("cold", "warm"):
        for method in ("edmonds-karp", "dinic"):
            sol = solve_min_max_load(
                c,
                energy_aware=energy_aware,
                search=search,
                engine=engine,
                method=method,
            )
            if reference is None:
                reference = sol
                continue
            assert sol.max_load == reference.max_load
            assert (sol.loads == reference.loads).all()
            assert sol.flow_paths == reference.flow_paths
            assert (sol.capacities == reference.capacities).all()


@given(st.integers(0, 25))
@settings(max_examples=15, deadline=None)
def test_warm_probes_match_cold_solves(seed):
    """Every feasibility verdict the warm engine hands the search equals a
    from-scratch solve at the same capacities."""
    c = _random_cluster(seed, n=8)
    total = c.total_packets
    if total == 0:
        return
    rng = np.random.default_rng(seed + 1000)
    eng = _WarmEngine(c, method="dinic")
    # A deliberately non-monotone probe schedule (up, down, repeats).
    for _ in range(8):
        caps = rng.integers(0, max(2, total + 1), size=c.n_sensors).astype(np.int64)
        warm_verdict = eng.probe(caps)
        cold_verdict = _feasible(c, caps) is not None
        assert warm_verdict == cold_verdict


def test_solve_counts_cold_engine_has_no_duplicate_solve():
    """The historical bug: the binary search proved `best` feasible, then
    re-ran the solve from scratch for the decomposition.  The cold engine
    now caches the last feasible network, so solves == probes."""
    c = _random_cluster(3)
    sol = solve_min_max_load(c, engine="cold", method="edmonds-karp")
    assert sol.stats is not None
    assert sol.stats.engine == "cold"
    assert sol.stats.max_flow_calls == sol.stats.probes
    assert sol.stats.builds == sol.stats.probes

    ea = solve_min_max_load(c, energy_aware=True, engine="cold", method="edmonds-karp")
    assert ea.stats.max_flow_calls == ea.stats.probes


def test_solve_counts_warm_engine_builds_once():
    c = _random_cluster(4)
    for energy_aware in (False, True):
        sol = solve_min_max_load(c, energy_aware=energy_aware, engine="warm")
        assert sol.stats is not None
        assert sol.stats.engine == "warm"
        assert sol.stats.builds == 1
        # probes + exactly one canonical decomposition solve
        assert sol.stats.max_flow_calls == sol.stats.probes + 1


def test_warm_linear_search_never_resets():
    """The paper's δ++ loop is monotone, so every probe after the first
    must warm-start (flow value never decreases between probes)."""
    c = _random_cluster(6)
    sol = solve_min_max_load(c, search="linear", engine="warm")
    cold = solve_min_max_load(c, search="linear", engine="cold")
    assert sol.max_load == cold.max_load
    assert (sol.loads == cold.loads).all()


def test_repair_uses_warm_engine_by_default():
    from repro.routing.repair import repair_routing

    c = _random_cluster(7, n=12)
    result = repair_routing(c, dead=set())
    assert result.solution.stats is not None
    assert result.solution.stats.engine == "warm"
