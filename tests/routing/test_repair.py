"""Tests for route repair: pruning dead nodes, partial-coverage fallback."""

import numpy as np
import pytest

from repro.routing import RoutingInfeasible, prune_dead_nodes, repair_routing, solve_min_max_load
from repro.topology import HEAD, Cluster, uniform_square


def test_prune_removes_all_hearing(chain_cluster):
    pruned = prune_dead_nodes(chain_cluster, {1})
    assert not pruned.hears[1].any()
    assert not pruned.hears[:, 1].any()
    assert not pruned.head_hears[1]
    assert pruned.packets[1] == 0


def test_prune_keeps_indices_and_survivors(chain_cluster):
    pruned = prune_dead_nodes(chain_cluster, {2})
    assert pruned.n_sensors == chain_cluster.n_sensors
    # untouched links survive: s1 still hears s0, head still hears s0
    assert pruned.hears[0, 1] and pruned.hears[1, 0]
    assert pruned.head_hears[0]


def test_prune_empty_set_returns_same_object(chain_cluster):
    assert prune_dead_nodes(chain_cluster, set()) is chain_cluster


def test_prune_does_not_mutate_original(chain_cluster):
    hears_before = chain_cluster.hears.copy()
    prune_dead_nodes(chain_cluster, {0, 1})
    assert (chain_cluster.hears == hears_before).all()


def test_prune_rejects_out_of_range(chain_cluster):
    with pytest.raises(ValueError, match="out of range"):
        prune_dead_nodes(chain_cluster, {99})


def test_repair_reroutes_around_dead_relay():
    # diamond: s1 can reach the head via s0 or s2; killing s0 must reroute.
    c = Cluster.from_edges(
        3, sensor_edges=[(0, 1), (1, 2)], head_links=[0, 2], packets=[1, 1, 1]
    )
    result = repair_routing(c, {0})
    assert result.uncovered == frozenset()
    assert result.coverage == pytest.approx(2 / 3)
    path = result.solution.routing_plan().paths[1]
    assert 0 not in path
    assert path[-1] == HEAD


def test_repair_reports_stranded_survivors(chain_cluster):
    # chain s3-s2-s1-s0-head: killing s0 strands everyone upstream.
    result = repair_routing(chain_cluster, {0})
    assert result.uncovered == frozenset({1, 2, 3})
    assert result.dead == frozenset({0})
    assert result.coverage == 0.0
    # graceful: no RoutingInfeasible, just an empty plan for the stranded
    assert set(result.solution.routing_plan().paths) == set()


def test_repair_mid_chain_cut(chain_cluster):
    result = repair_routing(chain_cluster, {2})
    assert result.uncovered == frozenset({3})
    assert result.coverage == pytest.approx(2 / 4)
    plan = result.solution.routing_plan()
    assert set(plan.paths) == {0, 1}


def test_repair_never_raises_infeasible():
    # killing everything that hears the head would make plain routing raise;
    # repair degrades to zero coverage instead.
    c = Cluster.from_edges(
        2, sensor_edges=[(0, 1)], head_links=[0], packets=[1, 1]
    )
    with pytest.raises(RoutingInfeasible):
        solve_min_max_load(prune_dead_nodes(c, {0}))
    result = repair_routing(c, {0})
    assert result.uncovered == frozenset({1})
    assert result.coverage == 0.0


def test_repair_no_dead_equals_plain_routing():
    dep = uniform_square(12, seed=2)
    c = Cluster.from_deployment(dep)
    repaired = repair_routing(c, set())
    plain = solve_min_max_load(c)
    assert repaired.solution.routing_plan().paths == plain.routing_plan().paths
    assert repaired.coverage == 1.0


def test_repair_random_clusters_cover_is_consistent():
    for seed in range(4):
        dep = uniform_square(14, seed=seed)
        c = Cluster.from_deployment(dep)
        dead = {0, 5}
        result = repair_routing(c, dead)
        plan = result.solution.routing_plan()
        # no dead node appears anywhere in surviving paths
        for path in plan.paths.values():
            assert not dead & set(path)
        # every covered survivor has a path; uncovered/dead have none
        for s in range(c.n_sensors):
            if s in dead or s in result.uncovered:
                assert s not in plan.paths
