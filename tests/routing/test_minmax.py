"""Tests for min-max-load routing: optimality, decomposition, energy variant."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.routing import RoutingInfeasible, solve_min_max_load
from repro.routing.paths import validate_path
from repro.topology import HEAD, Cluster, uniform_square


def test_fig2_balances_loads(fig2_cluster):
    sol = solve_min_max_load(fig2_cluster)
    assert sol.max_load == 1
    assert sol.loads.tolist() == [1, 1, 1]


def test_chain_loads_accumulate(chain_cluster):
    sol = solve_min_max_load(chain_cluster)
    # chain: s0 forwards everything -> load 4, s1 -> 3, ...
    assert sol.max_load == 4
    assert sol.loads.tolist() == [4, 3, 2, 1]


def test_star_single_hop(star_cluster):
    sol = solve_min_max_load(star_cluster)
    assert sol.max_load == 2  # sensor 1 has two own packets
    plan = sol.routing_plan()
    for s in plan.active_sensors():
        assert plan.paths[s] == (s, HEAD)


def test_two_gateways_split_traffic():
    # 4 back sensors (2..5) can reach either gateway 0 or 1.
    c = Cluster.from_edges(
        6,
        sensor_edges=[(0, 2), (0, 3), (0, 4), (0, 5), (1, 2), (1, 3), (1, 4), (1, 5)],
        head_links=[0, 1],
        packets=[0, 0, 1, 1, 1, 1],
    )
    sol = solve_min_max_load(c)
    # optimal: each gateway relays two packets
    assert sol.max_load == 2
    assert sol.loads[0] == 2 and sol.loads[1] == 2


def test_linear_and_binary_search_agree():
    for seed in range(4):
        dep = uniform_square(10, seed=seed)
        c = Cluster.from_deployment(dep)
        a = solve_min_max_load(c, search="binary")
        b = solve_min_max_load(c, search="linear")
        assert a.max_load == b.max_load


def test_decomposed_paths_are_valid_and_complete():
    for seed in range(4):
        dep = uniform_square(12, seed=seed)
        rng = np.random.default_rng(seed)
        c = Cluster.from_deployment(dep).with_packets(rng.integers(0, 4, size=12))
        sol = solve_min_max_load(c)
        for sensor, alternatives in sol.flow_paths.items():
            units = sum(u for _, u in alternatives)
            assert units == c.packets[sensor]
            for path, _ in alternatives:
                assert path[0] == sensor
                validate_path(c, path)


def test_loads_match_decomposed_paths():
    dep = uniform_square(10, seed=7)
    c = Cluster.from_deployment(dep)
    sol = solve_min_max_load(c)
    recomputed = np.zeros(10, dtype=np.int64)
    for alternatives in sol.flow_paths.values():
        for path, units in alternatives:
            for node in path[:-1]:
                recomputed[node] += units
    assert (recomputed == sol.loads).all()
    assert sol.loads.max() <= sol.max_load


def test_max_load_is_truly_minimal():
    """No routing can beat the returned delta (check via decrement)."""
    dep = uniform_square(9, seed=3)
    c = Cluster.from_deployment(dep)
    sol = solve_min_max_load(c)
    if sol.max_load > 1:
        from repro.routing.minmax import _build_network

        caps = np.full(9, sol.max_load - 1, dtype=np.int64)
        net, _, _ = _build_network(c, caps)
        assert net.max_flow(0, 1) < c.total_packets


def test_zero_packets_trivial():
    c = Cluster.from_edges(3, [(0, 1)], [0], packets=[0, 0, 0])
    sol = solve_min_max_load(c)
    assert sol.max_load == 0 and not sol.flow_paths


def test_unreachable_sender_raises():
    c = Cluster.from_edges(3, [(0, 1)], [0], packets=[1, 1, 1])  # sensor 2 isolated
    with pytest.raises(RoutingInfeasible):
        solve_min_max_load(c)


def test_unreachable_but_silent_sensor_is_fine():
    c = Cluster.from_edges(3, [(0, 1)], [0], packets=[1, 1, 0])
    sol = solve_min_max_load(c)
    assert sol.max_load == 2  # s0 sends own + relays s1


def test_energy_aware_shifts_load_to_rich_sensors():
    # Two gateways; gateway 0 has 4x the energy of gateway 1.
    c = Cluster.from_edges(
        6,
        sensor_edges=[(0, 2), (0, 3), (0, 4), (0, 5), (1, 2), (1, 3), (1, 4), (1, 5)],
        head_links=[0, 1],
        packets=[0, 0, 1, 1, 1, 1],
    )
    c.energy[:] = [4.0, 1.0, 1.0, 1.0, 1.0, 1.0]
    sol = solve_min_max_load(c, energy_aware=True)
    assert sol.loads[0] > sol.loads[1]
    # normalized load balanced: load0/4 vs load1/1
    assert sol.loads[0] / 4.0 <= sol.loads[1] + 1e-9 or sol.loads[1] <= 1


def test_energy_aware_matches_uniform_when_equal():
    dep = uniform_square(8, seed=1)
    c = Cluster.from_deployment(dep)
    uniform = solve_min_max_load(c)
    aware = solve_min_max_load(c, energy_aware=True)
    assert int(round(aware.max_load)) == uniform.max_load


def test_splitting_sensors_detection():
    dep = uniform_square(15, seed=2)
    c = Cluster.from_deployment(dep)
    sol = solve_min_max_load(c)
    flows = sol.next_hop_flows()
    for s in sol.splitting_sensors:
        assert len(flows[s]) > 1


def test_bad_search_mode_rejected(fig2_cluster):
    with pytest.raises(ValueError):
        solve_min_max_load(fig2_cluster, search="magic")


@given(st.integers(0, 30))
@settings(max_examples=15, deadline=None)
def test_random_clusters_flow_invariants(seed):
    dep = uniform_square(8, seed=seed)
    rng = np.random.default_rng(seed)
    c = Cluster.from_deployment(dep).with_packets(rng.integers(0, 3, size=8))
    sol = solve_min_max_load(c)
    # invariant: max_load >= max over sensors of own packets
    assert sol.max_load >= int(c.packets.max(initial=0)) or c.total_packets == 0
    # invariant: every sensor's load >= its own packets
    assert (sol.loads >= c.packets).all() or c.total_packets == 0
    # invariant: total load = total hop count of all unit paths
    total_hops = sum(
        (len(p) - 1) * u for alts in sol.flow_paths.values() for p, u in alts
    )
    assert sol.loads.sum() == total_hops
