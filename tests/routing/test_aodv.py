"""Protocol-level AODV tests (synchronous, no simulator)."""

import pytest

from repro.routing import BROADCAST, AodvAgent, Rerr, Rrep, Rreq


def drive_flood(agents: dict[int, AodvAgent], links: dict[int, list[int]], origin: int, dest: int, now: float = 0.0):
    """Synchronously propagate a discovery through a static topology.

    ``links[u]`` = neighbors that hear u.  Returns after the flood and the
    RREP unwind settle.
    """
    req, _ = agents[origin].make_rreq(dest)
    inbox: list[tuple[object, int, int]] = [
        (req, origin, nbr) for nbr in links[origin]
    ]
    guard = 0
    while inbox:
        guard += 1
        assert guard < 10_000, "flood did not settle"
        msg, from_node, at_node = inbox.pop(0)
        replies = agents[at_node].on_receive(
            msg, from_node, now, is_dest=(at_node == dest)
        )
        for out, link_dst in replies:
            if link_dst == BROADCAST:
                inbox.extend((out, at_node, nbr) for nbr in links[at_node])
            else:
                if link_dst in links[at_node]:
                    inbox.append((out, at_node, link_dst))


def line_topology(n: int) -> tuple[dict[int, AodvAgent], dict[int, list[int]]]:
    agents = {i: AodvAgent(node_id=i) for i in range(n)}
    links = {i: [j for j in (i - 1, i + 1) if 0 <= j < n] for i in range(n)}
    return agents, links


def test_discovery_installs_forward_route_along_line():
    agents, links = line_topology(5)
    drive_flood(agents, links, origin=0, dest=4)
    # hop-by-hop next hops lead to 4
    node, hops = 0, 0
    while node != 4:
        nxt = agents[node].route_to(4, now=1.0)
        assert nxt is not None
        node = nxt
        hops += 1
        assert hops <= 5
    assert hops == 4


def test_reverse_routes_learned_during_flood():
    agents, links = line_topology(4)
    drive_flood(agents, links, origin=0, dest=3)
    # intermediate nodes know the way back to the origin
    assert agents[2].route_to(0, now=1.0) == 1
    assert agents[1].route_to(0, now=1.0) == 0


def test_duplicate_rreq_suppressed():
    agents, links = line_topology(3)
    req, _ = agents[0].make_rreq(2)
    first = agents[1].on_receive(req, 0, 0.0)
    second = agents[1].on_receive(req, 0, 0.0)
    assert first and not second


def test_route_expiry():
    agent = AodvAgent(node_id=0, route_lifetime=5.0)
    rep = Rrep(origin=0, dest=9, dest_seq=1, hop_count=0, lifetime=5.0)
    agent.on_receive(rep, from_node=3, now=0.0)
    assert agent.route_to(9, now=1.0) == 3
    assert agent.route_to(9, now=6.0) is None


def test_fresher_sequence_number_wins():
    agent = AodvAgent(node_id=0)
    agent.on_receive(Rrep(origin=0, dest=9, dest_seq=1, hop_count=3, lifetime=10.0), 1, 0.0)
    agent.on_receive(Rrep(origin=0, dest=9, dest_seq=2, hop_count=7, lifetime=10.0), 2, 0.0)
    assert agent.route_to(9, now=1.0) == 2  # newer seq beats shorter hops
    agent.on_receive(Rrep(origin=0, dest=9, dest_seq=2, hop_count=1, lifetime=10.0), 4, 0.0)
    assert agent.route_to(9, now=1.0) == 4  # same seq, fewer hops wins


def test_invalidate_emits_rerr_and_drops_route():
    agent = AodvAgent(node_id=0)
    agent.on_receive(Rrep(origin=0, dest=9, dest_seq=1, hop_count=0, lifetime=10.0), 3, 0.0)
    out = agent.invalidate(9)
    assert len(out) == 1 and isinstance(out[0][0], Rerr)
    assert agent.route_to(9, now=0.1) is None
    assert agent.invalidate(9) == []  # idempotent


def test_rerr_propagates_only_to_dependents():
    downstream = AodvAgent(node_id=5)
    downstream.on_receive(Rrep(origin=5, dest=9, dest_seq=1, hop_count=2, lifetime=10.0), 3, 0.0)
    # RERR from the node we route through: invalidate + re-broadcast
    out = downstream.on_receive(Rerr(dest=9, dest_seq=2), 3, 0.1)
    assert out and downstream.route_to(9, now=0.2) is None
    # RERR from an unrelated node: ignored
    other = AodvAgent(node_id=6)
    other.on_receive(Rrep(origin=6, dest=9, dest_seq=1, hop_count=2, lifetime=10.0), 2, 0.0)
    assert other.on_receive(Rerr(dest=9, dest_seq=2), 4, 0.1) == []
    assert other.route_to(9, now=0.2) == 2


def test_intermediate_cache_answers():
    agents, links = line_topology(4)
    drive_flood(agents, links, origin=0, dest=3)
    # now node 1 knows a route to 3; a fresh flood from 0 should get an
    # answer straight from node 1's cache.
    req, _ = agents[0].make_rreq(3)
    replies = agents[1].on_receive(req, 0, now=1.0)
    assert any(isinstance(msg, Rrep) for msg, _ in replies)


def test_purge_drops_expired():
    agent = AodvAgent(node_id=0, route_lifetime=1.0)
    agent.on_receive(Rrep(origin=0, dest=9, dest_seq=1, hop_count=0, lifetime=1.0), 3, 0.0)
    agent.purge(now=2.0)
    assert 9 not in agent.routes


def test_control_tx_counted():
    agents, links = line_topology(4)
    drive_flood(agents, links, origin=0, dest=3)
    assert sum(a.control_tx for a in agents.values()) >= 4  # flood + RREPs
