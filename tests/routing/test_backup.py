"""k-disjoint backup routes: disjointness, determinism, validator wiring."""

from __future__ import annotations

import pytest

from repro import validate
from repro.routing import (
    BackupRoutes,
    compute_backup_routes,
    solve_min_max_load,
)
from repro.topology import HEAD, Cluster, uniform_square


def diamond_cluster() -> Cluster:
    """s1 can reach the head via s2 or s3; s0 is head-adjacent."""
    return Cluster.from_edges(
        4,
        sensor_edges=[(1, 2), (1, 3)],
        head_links=[0, 2, 3],
        packets=[1, 1, 1, 1],
    )


def test_k_zero_is_empty():
    sol = solve_min_max_load(diamond_cluster())
    routes = compute_backup_routes(sol, 0)
    assert routes.k == 0
    assert routes.backups == {}
    assert routes.select(1, set()) is None


def test_negative_k_rejected():
    sol = solve_min_max_load(diamond_cluster())
    with pytest.raises(ValueError):
        compute_backup_routes(sol, -1)


def test_diamond_alternative_found():
    sol = solve_min_max_load(diamond_cluster())
    routes = compute_backup_routes(sol, 2)
    (primary_path, _), = sol.flow_paths[1]
    backups = routes.paths_for(1)
    assert len(backups) == 1
    backup = backups[0]
    assert backup[0] == 1 and backup[-1] == HEAD
    # The one alternative uses the relay the primary does not.
    assert not (set(backup[1:-1]) & set(primary_path[1:-1]))


def test_direct_path_not_duplicated_as_backup():
    """Head-adjacent sensors whose only route is the direct link get no
    fake backups (the same path repeated is not an alternative)."""
    sol = solve_min_max_load(diamond_cluster())
    for sensor in (0, 2, 3):
        assert routes_avoiding_primaries(sol, sensor) == ()


def routes_avoiding_primaries(sol, sensor):
    return compute_backup_routes(sol, 2).paths_for(sensor)


@pytest.mark.parametrize("seed", [1, 3, 7])
@pytest.mark.parametrize("k", [1, 2, 3])
def test_random_clusters_disjoint_and_valid(seed, k):
    dep = uniform_square(30, seed=seed)
    cluster = Cluster.from_deployment(dep)
    sol = solve_min_max_load(cluster)
    monitor = validate.InvariantMonitor(mode="warn")
    routes = compute_backup_routes(sol, k)
    assert validate.check_backup_routes(cluster, routes, monitor=monitor) == 0
    assert monitor.violations == []
    for sensor, paths in routes.backups.items():
        assert len(paths) <= k
        primary_interiors = {
            node
            for path, _ in sol.flow_paths[sensor]
            for node in path[1:-1]
        }
        seen_interiors: set[int] = set()
        for path in paths:
            interior = set(path[1:-1])
            assert not (interior & primary_interiors)
            assert not (interior & seen_interiors)
            seen_interiors |= interior


def test_deterministic():
    dep = uniform_square(40, seed=11)
    sol = solve_min_max_load(Cluster.from_deployment(dep))
    a = compute_backup_routes(sol, 2)
    b = compute_backup_routes(sol, 2)
    assert a.backups == b.backups
    assert a.primary_interiors == b.primary_interiors


def test_select_skips_suspect_interiors():
    sol = solve_min_max_load(diamond_cluster())
    routes = compute_backup_routes(sol, 2)
    (backup,) = routes.paths_for(1)
    alt_relay = backup[1]
    assert routes.select(1, avoid=set()) == backup
    assert routes.select(1, avoid={alt_relay}) is None


def test_validator_flags_corrupted_routes():
    cluster = diamond_cluster()
    sol = solve_min_max_load(cluster)
    good = compute_backup_routes(sol, 2)
    (primary_path, _), = sol.flow_paths[1]
    relay = primary_path[1]
    bad = BackupRoutes(
        k=2,
        backups={1: ((1, relay, HEAD), (1, relay, HEAD))},
        primary_interiors=good.primary_interiors,
    )
    monitor = validate.InvariantMonitor(mode="warn")
    with pytest.warns(validate.InvariantWarning):
        assert validate.check_backup_routes(cluster, bad, monitor=monitor) > 0
    invariants = {v.invariant for v in monitor.violations}
    assert "backup.disjointness" in invariants


def test_validator_flags_phantom_edges():
    cluster = diamond_cluster()
    monitor = validate.InvariantMonitor(mode="warn")
    bad = BackupRoutes(k=1, backups={0: ((0, 3, 1, HEAD),)})
    with pytest.warns(validate.InvariantWarning):
        validate.check_backup_routes(cluster, bad, monitor=monitor)
    assert any(
        v.invariant == "backup.path-invalid" for v in monitor.violations
    )


def test_strict_mode_raises_on_breach():
    cluster = diamond_cluster()
    bad = BackupRoutes(k=1, backups={0: ((0,),)})
    monitor = validate.InvariantMonitor(mode="strict")
    with pytest.raises(validate.InvariantError):
        validate.check_backup_routes(cluster, bad, monitor=monitor)
