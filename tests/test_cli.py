"""Tests for the ``python -m repro`` command-line entry point."""

import pytest

from repro.__main__ import EXPERIMENTS, FAST, main


def test_list_prints_catalog(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_fig2_via_cli(capsys):
    assert main(["fig2"]) == 0
    out = capsys.readouterr().out
    assert "multi-hop polling example" in out
    assert "2" in out


def test_fig6_via_cli(capsys):
    assert main(["fig6"]) == 0
    assert "CPAR" in capsys.readouterr().out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["nonsense"])


def test_fast_set_is_runnable_subset():
    assert set(FAST) <= set(EXPERIMENTS)
    assert "fig7b" not in FAST  # the slow DES sweep stays opt-in
