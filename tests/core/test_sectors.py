"""Tests for sector partitioning: heuristic, exact, pseudo rates."""

import numpy as np
import pytest

from repro.core import (
    PairingRules,
    Sector,
    SectorPartition,
    best_branch_partition,
    iter_set_partitions,
    partition_into_sectors,
    partition_tree_into_sectors,
)
from repro.mac.base import geometric_oracle
from repro.routing import RelayTree, merge_flow_to_tree, solve_min_max_load
from repro.topology import HEAD, Cluster, uniform_square

from ..conftest import AllCompatibleOracle


def two_branch_cluster() -> Cluster:
    """Two first-level sensors 0,1; chains behind each; cross links 2-3."""
    return Cluster.from_edges(
        6,
        sensor_edges=[(0, 2), (2, 4), (1, 3), (3, 5), (2, 3)],
        head_links=[0, 1],
        packets=[1, 1, 1, 1, 1, 1],
    )


def test_sector_structure_and_paths():
    sec = Sector(sensors=[0, 2, 4], roots=[0], parent={0: HEAD, 2: 0, 4: 2})
    assert sec.size == 3
    assert sec.path_from(4) == (4, 2, 0, HEAD)
    c = two_branch_cluster()
    plan = sec.routing_plan(c)
    assert set(plan.paths) == {0, 2, 4}
    loads = sec.loads(c)
    assert loads[0] == 3 and loads[2] == 2 and loads[4] == 1


def test_partition_rejects_overlap():
    with pytest.raises(ValueError, match="two sectors"):
        SectorPartition(
            cluster=two_branch_cluster(),
            sectors=[
                Sector(sensors=[0, 2], roots=[0], parent={0: HEAD, 2: 0}),
                Sector(sensors=[2], roots=[2], parent={}),
            ],
        )


def test_pseudo_rates_formula():
    c = two_branch_cluster()
    sec = Sector(sensors=[0, 2, 4], roots=[0], parent={0: HEAD, 2: 0, 4: 2})
    part = SectorPartition(cluster=c, sectors=[sec])
    rates = part.pseudo_rates(c1=2.0, c2=0.5)
    assert rates[0] == 2.0 * 3 + 0.5 * 3
    assert rates[4] == 2.0 * 1 + 0.5 * 3
    assert part.max_pseudo_rate(2.0, 0.5) == rates[0]


def test_heuristic_covers_all_packet_owners():
    for seed in range(5):
        dep = uniform_square(18, seed=seed)
        c = Cluster.from_deployment(dep)
        oracle, c = geometric_oracle(c)
        sol = solve_min_max_load(c)
        part = partition_into_sectors(sol, oracle=oracle)
        covered = {s for sec in part.sectors for s in sec.sensors}
        owners = {s for s in range(18) if c.packets[s] > 0}
        assert owners <= covered
        # every sector's paths stay inside the sector
        for sec in part.sectors:
            for s in sec.sensors:
                assert all(
                    x in sec.sensors for x in sec.path_from(s)[:-1]
                )


def test_pairing_produces_at_most_two_roots():
    dep = uniform_square(20, seed=2)
    c = Cluster.from_deployment(dep)
    oracle, c = geometric_oracle(c)
    part = partition_into_sectors(solve_min_max_load(c), oracle=oracle)
    for sec in part.sectors:
        assert 1 <= len(sec.roots) <= 2


def test_sectoring_reduces_max_pseudo_rate_vs_whole():
    """The point of Sec. IV: sectors beat the single whole-cluster sector."""
    wins = 0
    for seed in range(5):
        dep = uniform_square(24, seed=seed)
        c = Cluster.from_deployment(dep)
        oracle, c = geometric_oracle(c)
        sol = solve_min_max_load(c)
        tree = merge_flow_to_tree(sol)
        part = partition_into_sectors(sol, oracle=oracle)
        # whole cluster as one "sector"
        whole = SectorPartition(
            cluster=c,
            sectors=[
                Sector(
                    sensors=tree.members,
                    roots=tree.first_level_roots(),
                    parent=dict(tree.parent),
                )
            ],
        )
        if part.max_pseudo_rate() < whole.max_pseudo_rate():
            wins += 1
    assert wins >= 4  # sectoring should essentially always help


def test_rebalancing_moves_weight_to_light_root():
    # branch of 0 is heavy (3 dependents), branch of 1 light; 2-3 linked.
    c = Cluster.from_edges(
        7,
        sensor_edges=[(0, 2), (2, 4), (2, 5), (4, 6), (1, 3), (2, 3), (3, 4)],
        head_links=[0, 1],
        packets=[1, 1, 1, 1, 1, 1, 1],
    )
    tree = RelayTree(
        cluster=c,
        parent={0: HEAD, 1: HEAD, 2: 0, 3: 1, 4: 2, 5: 2, 6: 4},
    )
    part = partition_tree_into_sectors(tree, oracle=AllCompatibleOracle())
    # one sector containing both branches (they are linked via 2-3)
    assert part.n_sectors == 1
    sec = part.sectors[0]
    loads = sec.loads(c)
    # after rebalancing the two roots should be closer than 5 vs 2
    assert abs(loads[0] - loads[1]) <= 3


def test_rules_toggles_respected():
    c = two_branch_cluster()
    sol = solve_min_max_load(c)
    no_link = partition_into_sectors(
        sol, oracle=AllCompatibleOracle(), rules=PairingRules(require_link=False)
    )
    assert no_link.n_sectors >= 1
    strict = partition_into_sectors(sol, oracle=AllCompatibleOracle())
    assert strict.n_sectors >= 1


def test_sector_of_lookup():
    c = two_branch_cluster()
    part = partition_into_sectors(solve_min_max_load(c), oracle=AllCompatibleOracle())
    for i, sec in enumerate(part.sectors):
        for s in sec.sensors:
            assert part.sector_of(s) == i
    with pytest.raises(KeyError):
        part.sector_of(999)


# --- exact branch partitioning ---------------------------------------------------------

def test_iter_set_partitions_counts_bell_numbers():
    assert len(list(iter_set_partitions([1]))) == 1
    assert len(list(iter_set_partitions([1, 2]))) == 2
    assert len(list(iter_set_partitions([1, 2, 3]))) == 5
    assert len(list(iter_set_partitions([1, 2, 3, 4]))) == 15
    assert list(iter_set_partitions([])) == [[]]


def test_exact_never_worse_than_heuristic():
    for seed in range(4):
        dep = uniform_square(14, seed=seed)
        c = Cluster.from_deployment(dep)
        oracle, c = geometric_oracle(c)
        sol = solve_min_max_load(c)
        tree = merge_flow_to_tree(sol)
        if len(tree.first_level_roots()) > 8:
            continue
        heuristic = partition_tree_into_sectors(tree, oracle=oracle)
        exact = best_branch_partition(tree)
        assert exact.max_pseudo_rate() <= heuristic.max_pseudo_rate() + 1e-9


def test_exact_cap():
    dep = uniform_square(40, seed=0)
    c = Cluster.from_deployment(dep)
    tree = merge_flow_to_tree(solve_min_max_load(c))
    if len(tree.first_level_roots()) > 8:
        with pytest.raises(ValueError):
            best_branch_partition(tree)
