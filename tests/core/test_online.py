"""Tests for the Table-1 on-line scheduler: correctness, loss, invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    BernoulliLoss,
    OnlinePollingScheduler,
    RequestState,
    makespan_lower_bound,
)
from repro.mac.base import geometric_oracle
from repro.routing import RoutingPlan, solve_min_max_load
from repro.topology import HEAD, Cluster, uniform_square

from ..conftest import AllCompatibleOracle


def test_fig2_two_slots(fig2_cluster, fig2_oracle):
    plan = solve_min_max_load(fig2_cluster).routing_plan()
    result = OnlinePollingScheduler.poll(plan, fig2_oracle)
    assert result.makespan == 2
    result.schedule.validate(list(result.pool), fig2_oracle)


def test_sequential_when_nothing_compatible(fig2_cluster):
    from repro.interference import TabulatedOracle

    oracle = TabulatedOracle([], valid_links=[(1, 0), (0, HEAD), (2, HEAD)])
    plan = solve_min_max_load(fig2_cluster).routing_plan()
    result = OnlinePollingScheduler.poll(plan, oracle)
    assert result.makespan == 3  # no concurrency possible


def test_single_hop_cluster_one_packet_per_slot(star_cluster, all_compatible):
    plan = solve_min_max_load(star_cluster).routing_plan()
    result = OnlinePollingScheduler.poll(plan, all_compatible)
    # head receives one packet per slot: 5 packets -> 5 slots (head bound)
    assert result.makespan == star_cluster.total_packets
    result.schedule.validate(list(result.pool), all_compatible)


def test_chain_pipeline_no_delay(chain_cluster, all_compatible):
    plan = solve_min_max_load(chain_cluster).routing_plan()
    result = OnlinePollingScheduler.poll(plan, all_compatible)
    result.schedule.validate(list(result.pool), all_compatible)
    # chain of 4, one packet each: s0 participates in 4 sends + 3 receives,
    # one per slot -> 7 slots is optimal, and the greedy scheduler finds it.
    assert result.makespan == 7


def test_unusable_link_rejected_at_construction(fig2_cluster):
    from repro.interference import TabulatedOracle

    oracle = TabulatedOracle([], valid_links=[(0, HEAD), (2, HEAD)])  # (1,0) missing
    plan = solve_min_max_load(fig2_cluster).routing_plan()
    with pytest.raises(ValueError, match="never"):
        OnlinePollingScheduler(plan, oracle)


def test_respects_makespan_lower_bounds():
    for seed in range(5):
        dep = uniform_square(12, seed=seed)
        c = Cluster.from_deployment(dep)
        oracle, c = geometric_oracle(c)
        plan = solve_min_max_load(c).routing_plan()
        scheduler = OnlinePollingScheduler(plan, oracle)
        result = scheduler.run()
        lb = makespan_lower_bound(list(result.pool), oracle.max_group_size)
        assert result.makespan >= lb
        result.schedule.validate(list(result.pool), oracle)


def test_concurrency_never_exceeds_m():
    dep = uniform_square(20, seed=1)
    c = Cluster.from_deployment(dep)
    oracle, c = geometric_oracle(c, max_group_size=3)
    plan = solve_min_max_load(c).routing_plan()
    result = OnlinePollingScheduler.poll(plan, oracle)
    assert max(result.schedule.concurrency_profile()) <= 3


def test_loss_forces_retries_but_completes(fig2_cluster, fig2_oracle):
    plan = solve_min_max_load(fig2_cluster).routing_plan()
    result = OnlinePollingScheduler.poll(
        plan, fig2_oracle, loss=BernoulliLoss(0.4, seed=11)
    )
    assert result.pool.all_deleted()
    assert result.retransmissions >= 0
    result.schedule.validate(list(result.pool), fig2_oracle)


def test_loss_makespan_dominates_lossless(chain_cluster, all_compatible):
    plan = solve_min_max_load(chain_cluster).routing_plan()
    clean = OnlinePollingScheduler.poll(plan, all_compatible)
    lossy = OnlinePollingScheduler.poll(
        plan, all_compatible, loss=BernoulliLoss(0.5, seed=3)
    )
    assert lossy.makespan >= clean.makespan
    assert lossy.total_attempts > clean.total_attempts


def test_retry_limit_abandons_packets(fig2_cluster, fig2_oracle):
    scheduler = OnlinePollingScheduler(
        solve_min_max_load(fig2_cluster).routing_plan(),
        fig2_oracle,
        loss=BernoulliLoss(0.95, seed=5),
        retry_limit=3,
    )
    result = scheduler.run()
    # with 95% loss and 3 retries, something almost surely failed
    assert scheduler.failed or result.pool.all_deleted()
    for rid in scheduler.failed:
        assert scheduler.pool.by_id(rid).state is RequestState.DELETED


def test_retry_exhaustion_reported_in_result(fig2_cluster, fig2_oracle):
    scheduler = OnlinePollingScheduler(
        solve_min_max_load(fig2_cluster).routing_plan(),
        fig2_oracle,
        loss=BernoulliLoss(0.95, seed=5),
        retry_limit=3,
    )
    result = scheduler.run()
    assert result.failed_ids == frozenset(scheduler.failed)
    assert result.n_failed == len(scheduler.failed)
    assert result.delivered_count == len(result.pool.requests) - result.n_failed
    assert result.delivery_ratio == pytest.approx(
        result.delivered_count / len(result.pool.requests)
    )


def test_retry_limit_none_retries_forever(fig2_cluster, fig2_oracle):
    # retry_limit=None is "retry until it arrives": heavy loss slows the
    # run down but nothing is ever abandoned.
    result = OnlinePollingScheduler.poll(
        solve_min_max_load(fig2_cluster).routing_plan(),
        fig2_oracle,
        loss=BernoulliLoss(0.8, seed=7),
    )
    assert result.failed_ids == frozenset()
    assert result.delivery_ratio == 1.0
    assert result.pool.all_deleted()


def test_dead_after_misses_blacklists_silent_sensor(fig2_cluster, fig2_oracle):
    """A sensor that never answers is declared dead after K consecutive
    missed expected arrivals; its requests land in failed_ids."""
    plan = solve_min_max_load(fig2_cluster).routing_plan()
    ext = OnlinePollingScheduler(plan, fig2_oracle, dead_after_misses=3)
    dead_sensor = 1  # two-hop sensor: stays silent the whole phase
    t = 0
    while not ext.all_done and t < 200:
        group = ext.external_step(t, set())  # seed arrivals below
        delivered = {
            tx.request_id
            for tx in ext.schedule.group_at(t)
            if tx.receiver == HEAD
            and ext.pool.by_id(tx.request_id).sensor != dead_sensor
        }
        t += 1
        if delivered:
            group = ext.external_step(t, delivered)
            t += 1
    assert ext.all_done
    assert dead_sensor in ext.blacklist
    failed_sensors = {ext.pool.by_id(rid).sensor for rid in ext.failed}
    assert failed_sensors == {dead_sensor}


def test_dead_after_misses_validation(fig2_cluster, fig2_oracle):
    plan = solve_min_max_load(fig2_cluster).routing_plan()
    with pytest.raises(ValueError, match="dead_after_misses"):
        OnlinePollingScheduler(plan, fig2_oracle, dead_after_misses=0)


def test_delivery_resets_miss_streak(fig2_cluster, fig2_oracle):
    """Intermittent losses below K consecutive misses never blacklist."""
    plan = solve_min_max_load(fig2_cluster).routing_plan()
    ext = OnlinePollingScheduler(plan, fig2_oracle, dead_after_misses=2)
    t = 0
    dropped: set[int] = set()
    delivered: set[int] = set()
    while not ext.all_done and t < 200:
        group = ext.external_step(t, delivered)
        delivered = set()
        for tx in group:
            if tx.receiver == HEAD:
                if tx.request_id not in dropped:
                    dropped.add(tx.request_id)  # lose first try only
                else:
                    delivered.add(tx.request_id)
        t += 1
    if delivered:
        ext.external_step(t, delivered)
    assert ext.all_done
    assert ext.blacklist == set()
    assert ext.failed == set()


def test_external_stepping_equivalent_to_internal(fig2_cluster, fig2_oracle):
    """Driving external_step with perfect delivery mirrors run() exactly."""
    plan = solve_min_max_load(fig2_cluster).routing_plan()
    internal = OnlinePollingScheduler.poll(plan, fig2_oracle)

    ext = OnlinePollingScheduler(plan, fig2_oracle)
    t = 0
    delivered: set[int] = set()
    groups = []
    while not ext.all_done and t < 100:
        group = ext.external_step(t, delivered)
        groups.append(group)
        # perfect channel: every final hop in this slot arrives
        delivered = {
            tx.request_id for tx in group if tx.receiver == HEAD
        }
        t += 1
    assert ext.schedule.makespan() == internal.makespan
    for a, b in zip(ext.schedule.slots, internal.schedule.slots):
        assert a == b


def test_external_stepping_with_losses_repolls(fig2_cluster, fig2_oracle):
    plan = solve_min_max_load(fig2_cluster).routing_plan()
    ext = OnlinePollingScheduler(plan, fig2_oracle)
    t = 0
    delivered: set[int] = set()
    drop_first = True
    while not ext.all_done and t < 100:
        group = ext.external_step(t, delivered)
        delivered = set()
        for tx in group:
            if tx.receiver == HEAD:
                if drop_first:
                    drop_first = False  # swallow the first arrival
                else:
                    delivered.add(tx.request_id)
        t += 1
    assert ext.all_done
    attempts = ext.pool.total_attempts()
    assert attempts == len(ext.pool.requests) + 1  # exactly one re-poll


def test_multi_packet_sensors(star_cluster, all_compatible):
    c = star_cluster.with_packets([3, 0, 0, 0, 2])
    plan = solve_min_max_load(c).routing_plan()
    result = OnlinePollingScheduler.poll(plan, all_compatible)
    assert result.makespan == 5
    assert len(result.pool) == 5


@given(st.integers(0, 40))
@settings(max_examples=20, deadline=None)
def test_random_clusters_always_valid_schedules(seed):
    """Property: on random geometric clusters, the greedy scheduler always
    produces a schedule that passes full validation."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(4, 14))
    dep = uniform_square(n, seed=seed)
    c = Cluster.from_deployment(dep).with_packets(rng.integers(0, 3, size=n))
    oracle, c = geometric_oracle(c)
    if c.total_packets == 0:
        return
    plan = solve_min_max_load(c).routing_plan()
    result = OnlinePollingScheduler.poll(plan, oracle)
    result.schedule.validate(list(result.pool), oracle)
    assert result.makespan >= makespan_lower_bound(
        list(result.pool), oracle.max_group_size
    )
