"""Tests for ack collection: set cover, BFS fallback, merged-ack polling."""

import numpy as np
import pytest

from repro.core import (
    OnlinePollingScheduler,
    bfs_path_to_head,
    greedy_weighted_set_cover,
    plan_ack_collection,
    run_ack_collection,
)
from repro.mac.base import geometric_oracle
from repro.routing import solve_min_max_load
from repro.topology import HEAD, Cluster, uniform_square

from ..conftest import AllCompatibleOracle


# --- greedy weighted set cover ----------------------------------------------------

def test_set_cover_basic():
    subsets = [
        (frozenset({0, 1, 2}), 3.0),
        (frozenset({2, 3}), 1.0),
        (frozenset({0, 1}), 1.0),
    ]
    chosen = greedy_weighted_set_cover({0, 1, 2, 3}, subsets)
    # greedy: {2,3} (0.5) then {0,1} (0.5): total cost 2 < the 3-cost set
    assert sorted(chosen) == [1, 2]


def test_set_cover_prefers_cheap_per_element():
    subsets = [
        (frozenset({0, 1, 2, 3}), 8.0),  # 2.0 per element
        (frozenset({0, 1}), 2.0),  # 1.0 per element
        (frozenset({2, 3}), 2.0),
    ]
    chosen = greedy_weighted_set_cover({0, 1, 2, 3}, subsets)
    assert sorted(chosen) == [1, 2]


def test_set_cover_uncoverable_raises():
    with pytest.raises(ValueError, match="cannot cover"):
        greedy_weighted_set_cover({0, 1}, [(frozenset({0}), 1.0)])


def test_set_cover_empty_universe():
    assert greedy_weighted_set_cover(set(), [(frozenset({1}), 1.0)]) == []


def test_set_cover_empty_universe_no_subsets():
    assert greedy_weighted_set_cover(set(), []) == []


def test_set_cover_single_element_subsets():
    # Only singletons available: every one must be chosen, cheapest-first
    # (all gains are 1, so cost/gain ordering is pure cost ordering).
    subsets = [
        (frozenset({0}), 3.0),
        (frozenset({1}), 1.0),
        (frozenset({2}), 2.0),
    ]
    chosen = greedy_weighted_set_cover({0, 1, 2}, subsets)
    assert chosen == [1, 2, 0]


def test_set_cover_tie_prefers_larger_subset():
    # Equal cost-per-element: the bigger subset wins (fewer polls).
    subsets = [
        (frozenset({0}), 1.0),
        (frozenset({0, 1}), 2.0),
        (frozenset({0, 1, 2}), 3.0),
    ]
    assert greedy_weighted_set_cover({0, 1, 2}, subsets) == [2]


def test_set_cover_exact_tie_breaks_by_input_order():
    # Identical (cost, size): the earliest subset is chosen, so planning is
    # reproducible run to run regardless of dict/set iteration accidents.
    subsets = [
        (frozenset({0, 1}), 2.0),
        (frozenset({0, 1}), 2.0),
        (frozenset({1, 0}), 2.0),
    ]
    first = greedy_weighted_set_cover({0, 1}, subsets)
    assert first == [0]
    assert all(
        greedy_weighted_set_cover({0, 1}, subsets) == first for _ in range(5)
    )


# --- BFS fallback paths --------------------------------------------------------------

def test_bfs_path_level1(fig2_cluster):
    assert bfs_path_to_head(fig2_cluster, 0) == (0, HEAD)
    assert bfs_path_to_head(fig2_cluster, 1) == (1, 0, HEAD)


def test_bfs_path_chain(chain_cluster):
    assert bfs_path_to_head(chain_cluster, 3) == (3, 2, 1, 0, HEAD)


def test_bfs_path_unreachable():
    c = Cluster.from_edges(2, [], [0])
    with pytest.raises(ValueError):
        bfs_path_to_head(c, 1)


# --- ack planning ---------------------------------------------------------------------

def test_ack_plan_covers_all_sensors():
    for seed in range(4):
        dep = uniform_square(15, seed=seed)
        c = Cluster.from_deployment(dep)
        plan = solve_min_max_load(c).routing_plan()
        ack = plan_ack_collection(c, plan)
        assert ack.covered == set(range(15))
        assert ack.n_polls <= 15  # never worse than polling everyone


def test_ack_plan_merges_chain_into_one_poll(chain_cluster):
    plan = solve_min_max_load(chain_cluster).routing_plan()
    ack = plan_ack_collection(chain_cluster, plan)
    # a single 4-hop path covers the whole chain: one poll suffices
    assert ack.n_polls == 1
    assert ack.paths[0] == (3, 2, 1, 0, HEAD)
    assert ack.total_hop_count == 4


def test_ack_plan_covers_sensors_outside_data_paths(fig2_cluster):
    # sensor 0 has no packets and appears only as a relay; sensor 2 direct;
    # suppose routing only has sensor 2's path -> 0 and 1 need fallbacks.
    from repro.routing import RoutingPlan

    plan = RoutingPlan(cluster=fig2_cluster, paths={2: (2, HEAD)})
    ack = plan_ack_collection(fig2_cluster, plan)
    assert ack.covered == {0, 1, 2}


def test_ack_collection_runs_and_delivers(chain_cluster):
    plan = solve_min_max_load(chain_cluster).routing_plan()
    ack = plan_ack_collection(chain_cluster, plan)
    result = run_ack_collection(chain_cluster, ack, AllCompatibleOracle())
    assert result.pool.all_deleted()
    # one merged ack packet traveling 4 hops
    assert result.makespan == 4


def test_ack_collection_dedupes_shared_starts(fig2_cluster):
    from repro.core.ack import AckPlan

    ack = AckPlan(
        paths=[(1, 0, HEAD), (1, 0, HEAD)], total_hop_count=4, covered={0, 1}
    )
    result = run_ack_collection(fig2_cluster, ack, AllCompatibleOracle())
    assert len(result.pool) == 1
