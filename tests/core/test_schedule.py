"""Tests for PollingSchedule validation: the legality rules of Sec. II/III."""

import pytest

from repro.core import (
    PollingSchedule,
    PollRequest,
    RequestPool,
    ScheduleInvalid,
    Transmission,
)
from repro.interference import TabulatedOracle
from repro.routing import RoutingPlan, solve_min_max_load
from repro.topology import HEAD


def make_request(rid, sensor, path):
    return PollRequest(request_id=rid, sensor=sensor, path=path)


def pipeline(schedule, rid, path, start, deliver=True):
    for k in range(len(path) - 1):
        schedule.add(
            start + k,
            Transmission(sender=path[k], receiver=path[k + 1], request_id=rid, hop_index=k),
        )
    if deliver:
        schedule.delivered[rid] = start + len(path) - 2


def test_valid_pipelined_schedule_passes(fig2_oracle):
    sched = PollingSchedule()
    pipeline(sched, 0, (1, 0, HEAD), start=0)
    pipeline(sched, 1, (2, HEAD), start=0)
    reqs = [make_request(0, 1, (1, 0, HEAD)), make_request(1, 2, (2, HEAD))]
    sched.validate(reqs, fig2_oracle)
    assert sched.makespan() == 2
    assert sched.n_slots == 2
    assert sched.transmissions_total() == 3
    assert sched.concurrency_profile() == [2, 1]


def test_node_reuse_in_slot_rejected():
    sched = PollingSchedule()
    sched.add(0, Transmission(0, HEAD, 0, 0))
    sched.add(0, Transmission(1, HEAD, 1, 0))  # head used twice
    with pytest.raises(ScheduleInvalid, match="node used twice"):
        sched.validate([], None)


def test_incompatible_group_rejected():
    sched = PollingSchedule()
    sched.add(0, Transmission(1, 0, 0, 0))
    sched.add(0, Transmission(2, HEAD, 1, 0))
    oracle = TabulatedOracle([], valid_links=[(1, 0), (2, HEAD), (0, HEAD)])
    reqs = [make_request(0, 1, (1, 0, HEAD)), make_request(1, 2, (2, HEAD))]
    with pytest.raises(ScheduleInvalid, match="incompatible"):
        sched.validate(reqs, oracle, require_all_delivered=False)


def test_group_beyond_m_rejected(fig2_oracle):
    sched = PollingSchedule()
    sched.add(0, Transmission(0, 1, 0, 0))
    sched.add(0, Transmission(2, 3, 1, 0))
    sched.add(0, Transmission(4, 5, 2, 0))
    with pytest.raises(ScheduleInvalid, match="exceed"):
        sched.validate([], fig2_oracle, require_all_delivered=False)


def test_no_delay_violation_detected(fig2_oracle):
    sched = PollingSchedule()
    sched.add(0, Transmission(1, 0, 0, 0))
    sched.add(2, Transmission(0, HEAD, 0, 1))  # gap of one slot
    sched.delivered[0] = 2
    reqs = [make_request(0, 1, (1, 0, HEAD))]
    with pytest.raises(ScheduleInvalid, match="no-delay"):
        sched.validate(reqs, fig2_oracle)
    # but legal when delay is allowed
    sched.validate(reqs, fig2_oracle, allow_delay=True)


def test_delayed_schedule_must_still_be_ordered(fig2_oracle):
    sched = PollingSchedule()
    sched.add(2, Transmission(1, 0, 0, 0))
    sched.add(2, Transmission(0, HEAD, 0, 1))  # same slot as hop 0!
    with pytest.raises(ScheduleInvalid):
        sched.validate(
            [make_request(0, 1, (1, 0, HEAD))], None, allow_delay=True,
            require_all_delivered=False,
        )


def test_wrong_hop_link_detected(fig2_oracle):
    sched = PollingSchedule()
    sched.add(0, Transmission(1, 2, 0, 0))  # path says 1 -> 0
    with pytest.raises(ScheduleInvalid, match="path says"):
        sched.validate(
            [make_request(0, 1, (1, 0, HEAD))], None, require_all_delivered=False
        )


def test_undelivered_request_detected(fig2_oracle):
    sched = PollingSchedule()
    pipeline(sched, 0, (1, 0, HEAD), start=0, deliver=False)
    with pytest.raises(ScheduleInvalid, match="never delivered"):
        sched.validate([make_request(0, 1, (1, 0, HEAD))], fig2_oracle)


def test_unscheduled_request_detected(fig2_oracle):
    sched = PollingSchedule()
    with pytest.raises(ScheduleInvalid, match="never scheduled"):
        sched.validate([make_request(0, 1, (1, 0, HEAD))], fig2_oracle)


def test_phantom_delivery_detected(fig2_oracle):
    sched = PollingSchedule()
    pipeline(sched, 0, (1, 0, HEAD), start=0, deliver=False)
    sched.delivered[0] = 5  # no final hop there
    with pytest.raises(ScheduleInvalid, match="no final hop"):
        sched.validate([make_request(0, 1, (1, 0, HEAD))], fig2_oracle)


def test_retry_attempts_validate(fig2_oracle):
    """A lost attempt followed by a successful one is a legal schedule."""
    sched = PollingSchedule()
    pipeline(sched, 0, (1, 0, HEAD), start=0, deliver=False)  # lost attempt
    pipeline(sched, 0, (1, 0, HEAD), start=2, deliver=True)
    sched.validate([make_request(0, 1, (1, 0, HEAD))], fig2_oracle)
    assert sched.makespan() == 4


def test_last_slot_of_node():
    sched = PollingSchedule()
    pipeline(sched, 0, (1, 0, HEAD), start=0)
    assert sched.last_slot_of_node(1) == 0
    assert sched.last_slot_of_node(0) == 1
    assert sched.last_slot_of_node(HEAD) == 1
    assert sched.last_slot_of_node(9) is None


def test_describe_readable(fig2_oracle):
    sched = PollingSchedule()
    pipeline(sched, 0, (1, 0, HEAD), start=0)
    text = sched.describe()
    assert "slot 1" in text and "s1->s0" in text and "deliveries" in text


def test_negative_slot_rejected():
    with pytest.raises(ValueError):
        PollingSchedule().add(-1, Transmission(0, HEAD, 0, 0))


def test_gantt_renders_roles(fig2_oracle):
    sched = PollingSchedule()
    pipeline(sched, 0, (1, 0, HEAD), start=0)
    pipeline(sched, 1, (2, HEAD), start=0)
    art = sched.gantt()
    lines = art.splitlines()
    assert any(l.startswith("s1") and "T" in l for l in lines)
    assert any(l.startswith("t") and l.count("R") == 2 for l in lines)
    # s0 receives in slot 1 and transmits in slot 2
    s0 = next(l for l in lines if l.startswith("s0"))
    assert "R" in s0 and "T" in s0


def test_gantt_empty():
    assert PollingSchedule().gantt() == "(empty schedule)"
