"""Tests for the joint routing+polling problem (Sec. III-E)."""

import pytest

from repro.core import all_simple_paths_to_head, decomposed_jmhrp, exact_jmhrp, power_rate
from repro.topology import HEAD, Cluster

from ..conftest import AllCompatibleOracle


def diamond_cluster() -> Cluster:
    """Sensor 2 can go via 0 or 1; both are head-adjacent."""
    return Cluster.from_edges(
        3, sensor_edges=[(0, 2), (1, 2)], head_links=[0, 1], packets=[1, 1, 1]
    )


def test_power_rate_linear():
    assert power_rate(3, 10, c1=2.0, c2=0.5) == 11.0


def test_all_simple_paths_enumeration():
    c = diamond_cluster()
    paths = all_simple_paths_to_head(c, 2, max_hops=2)
    assert (2, 0, HEAD) in paths and (2, 1, HEAD) in paths
    assert all(p[0] == 2 and p[-1] == HEAD for p in paths)
    # direct path impossible (head does not hear 2)
    assert (2, HEAD) not in paths


def test_all_simple_paths_hop_cap():
    c = diamond_cluster()
    assert all(len(p) - 1 <= 2 for p in all_simple_paths_to_head(c, 2, max_hops=2))


def test_decomposed_pipeline_runs():
    c = diamond_cluster()
    res = decomposed_jmhrp(c, AllCompatibleOracle())
    assert res.polling_time >= 3  # 3 packets through the head
    assert res.max_load >= 1
    assert res.max_power_rate == pytest.approx(
        res.max_load + res.polling_time
    )


def test_exact_jmhrp_never_worse_than_decomposed():
    c = diamond_cluster()
    oracle = AllCompatibleOracle()
    exact = exact_jmhrp(c, oracle, max_hops=2)
    heuristic = decomposed_jmhrp(c, oracle)
    assert exact.max_power_rate <= heuristic.max_power_rate + 1e-9


def test_exact_jmhrp_combination_cap():
    c = diamond_cluster()
    with pytest.raises(ValueError):
        exact_jmhrp(c, AllCompatibleOracle(), max_hops=2, max_combinations=1)


def test_exact_jmhrp_unreachable_raises():
    c = Cluster.from_edges(2, [], [0], packets=[1, 1])
    with pytest.raises(ValueError):
        exact_jmhrp(c, AllCompatibleOracle(), max_hops=2)
