"""Tests for Transmission structure and the request lifecycle."""

import pytest

from repro.core import (
    PollRequest,
    RequestPool,
    RequestState,
    Transmission,
    links_of,
    occupied_nodes,
    structurally_ok,
)
from repro.routing import RoutingPlan, solve_min_max_load
from repro.topology import HEAD


def tx(sender, receiver, rid=0, hop=0):
    return Transmission(sender=sender, receiver=receiver, request_id=rid, hop_index=hop)


def test_structurally_ok_rejects_node_reuse():
    assert structurally_ok([tx(0, 1), tx(2, 3)])
    assert not structurally_ok([tx(0, 1), tx(1, 2)])
    assert not structurally_ok([tx(0, 1), tx(2, 1)])
    assert not structurally_ok([tx(0, 0)])
    assert structurally_ok([])


def test_head_counts_as_a_node():
    assert not structurally_ok([tx(0, HEAD), tx(1, HEAD)])  # head can't rx twice


def test_occupied_and_links():
    group = [tx(0, 1), tx(2, HEAD)]
    assert occupied_nodes(group) == {0, 1, 2, HEAD}
    assert links_of(group) == [(0, 1), (2, HEAD)]


def test_request_lifecycle():
    req = PollRequest(request_id=0, sensor=1, path=(1, 0, HEAD))
    assert req.state is RequestState.ACTIVE
    assert req.hop_count == 2
    req.mark_scheduled(3)
    assert req.state is RequestState.IDLE
    assert req.arrival_slot() == 4
    assert req.attempts == 1
    req.mark_lost()
    assert req.state is RequestState.ACTIVE
    req.mark_scheduled(7)
    assert req.attempts == 2 and req.arrival_slot() == 8
    req.mark_delivered()
    assert req.state is RequestState.DELETED


def test_request_illegal_transitions():
    req = PollRequest(request_id=0, sensor=1, path=(1, HEAD))
    with pytest.raises(ValueError):
        req.mark_lost()  # not scheduled yet
    with pytest.raises(ValueError):
        req.mark_delivered()
    with pytest.raises(ValueError):
        req.arrival_slot()
    req.mark_scheduled(0)
    with pytest.raises(ValueError):
        req.mark_scheduled(1)  # already idle


def test_pool_one_request_per_packet(fig2_cluster):
    c = fig2_cluster.with_packets([0, 3, 2])
    plan = RoutingPlan(cluster=c, paths={1: (1, 0, HEAD), 2: (2, HEAD)})
    pool = RequestPool(plan)
    assert len(pool) == 5
    sensors = [r.sensor for r in pool]
    assert sensors == [1, 1, 1, 2, 2]  # sensor order, packets consecutive
    assert [r.request_id for r in pool] == [0, 1, 2, 3, 4]


def test_pool_scan_orders(fig2_cluster):
    plan = solve_min_max_load(fig2_cluster).routing_plan()
    deep = RequestPool(plan, order="deep-first")
    assert deep.requests[0].hop_count >= deep.requests[-1].hop_count
    shallow = RequestPool(plan, order="shallow-first")
    assert shallow.requests[0].hop_count <= shallow.requests[-1].hop_count
    with pytest.raises(ValueError):
        RequestPool(plan, order="nonsense")


def test_pool_queries(fig2_cluster):
    plan = solve_min_max_load(fig2_cluster).routing_plan()
    pool = RequestPool(plan)
    assert len(pool.active()) == 2 and not pool.idle()
    pool.requests[0].mark_scheduled(0)
    assert len(pool.active()) == 1 and len(pool.idle()) == 1
    assert not pool.all_deleted()
    assert pool.by_id(1).request_id == 1
    with pytest.raises(KeyError):
        pool.by_id(99)
