"""Tests for the exact scheduler, lower bounds, and the Thm. 2 delay claim."""

import numpy as np
import pytest

from repro.core import (
    OnlinePollingScheduler,
    RequestPool,
    makespan_lower_bound,
    optimal_makespan,
    solve_optimal,
)
from repro.core.optimal import feasible_within
from repro.mac.base import geometric_oracle
from repro.routing import solve_min_max_load
from repro.topology import Cluster, uniform_square

from ..conftest import AllCompatibleOracle


def test_fig2_optimal_is_two(fig2_cluster, fig2_oracle):
    plan = solve_min_max_load(fig2_cluster).routing_plan()
    result = solve_optimal(plan, fig2_oracle)
    assert result.makespan == 2
    result.schedule.validate(list(RequestPool(plan)), fig2_oracle)


def test_optimal_never_beats_lower_bound_never_loses_to_greedy():
    for seed in range(6):
        dep = uniform_square(6, seed=seed)
        rng = np.random.default_rng(seed)
        c = Cluster.from_deployment(dep).with_packets(rng.integers(0, 3, size=6))
        if c.total_packets == 0 or c.total_packets > 10:
            continue
        oracle, c = geometric_oracle(c)
        plan = solve_min_max_load(c).routing_plan()
        greedy = OnlinePollingScheduler.poll(plan, oracle)
        opt = solve_optimal(plan, oracle)
        lb = makespan_lower_bound(list(RequestPool(plan)), oracle.max_group_size)
        assert lb <= opt.makespan <= greedy.makespan
        opt.schedule.validate(list(RequestPool(plan)), oracle)


def test_optimal_schedule_reconstruction_valid(chain_cluster, all_compatible):
    plan = solve_min_max_load(chain_cluster).routing_plan()
    result = solve_optimal(plan, all_compatible)
    result.schedule.validate(list(RequestPool(plan)), all_compatible)
    assert result.schedule.makespan() == result.makespan
    assert result.makespan == 7  # the chain's participation bound


def test_allow_delay_never_longer(chain_cluster, all_compatible):
    plan = solve_min_max_load(chain_cluster).routing_plan()
    nodelay = solve_optimal(plan, all_compatible, allow_delay=False)
    delayed = solve_optimal(plan, all_compatible, allow_delay=True)
    assert delayed.makespan <= nodelay.makespan


def test_thm2_delay_never_helps_on_tsrf():
    """Thm. 2's exchange argument: on TSRFs, delaying buys nothing."""
    from repro.hardness import random_graph, tsrfp_from_graph

    for seed in range(4):
        inst = tsrfp_from_graph(random_graph(4, 0.5, seed=seed))
        plan = inst.routing_plan()
        nodelay = solve_optimal(plan, inst.oracle, allow_delay=False)
        delayed = solve_optimal(plan, inst.oracle, allow_delay=True)
        assert nodelay.makespan == delayed.makespan


def test_request_cap_enforced(star_cluster, all_compatible):
    c = star_cluster.with_packets([20, 0, 0, 0, 0])
    plan = solve_min_max_load(c).routing_plan()
    with pytest.raises(ValueError, match="exceed"):
        solve_optimal(plan, all_compatible)


def test_empty_instance(fig2_cluster, fig2_oracle):
    c = fig2_cluster.with_packets([0, 0, 0])
    plan = solve_min_max_load(c).routing_plan()
    assert solve_optimal(plan, fig2_oracle).makespan == 0


def test_feasible_within_decision(fig2_cluster, fig2_oracle):
    plan = solve_min_max_load(fig2_cluster).routing_plan()
    assert feasible_within(plan, fig2_oracle, deadline=2)
    assert not feasible_within(plan, fig2_oracle, deadline=1)
    assert feasible_within(plan, fig2_oracle, deadline=10)


def test_optimal_makespan_convenience(fig2_cluster, fig2_oracle):
    plan = solve_min_max_load(fig2_cluster).routing_plan()
    assert optimal_makespan(plan, fig2_oracle) == 2


# --- lower bounds -----------------------------------------------------------------

def test_bounds_head_bound(star_cluster):
    pool = RequestPool(solve_min_max_load(star_cluster).routing_plan())
    # 5 one-hop packets: head receives one per slot -> bound 5
    assert makespan_lower_bound(list(pool), 2) == 5


def test_bounds_pipeline_bound(chain_cluster):
    c = chain_cluster.with_packets([0, 0, 0, 1])
    pool = RequestPool(solve_min_max_load(c).routing_plan())
    assert makespan_lower_bound(list(pool), 2) == 4  # the 4-hop pipeline


def test_bounds_concurrency_bound(chain_cluster):
    pool = RequestPool(solve_min_max_load(chain_cluster).routing_plan())
    # total transmissions 4+3+2+1 = 10; with M = 1 need >= 10 slots
    assert makespan_lower_bound(list(pool), 1) >= 10


def test_bounds_node_load_bound(chain_cluster):
    pool = RequestPool(solve_min_max_load(chain_cluster).routing_plan())
    # s0 carries load 4 at distance 1: bound >= 4; head bound gives 4 too;
    # with M=2 the concurrency bound gives ceil(10/2) = 5.
    assert makespan_lower_bound(list(pool), 2) >= 5


def test_bounds_empty():
    assert makespan_lower_bound([], 2) == 0
