"""Sweep runner tests: resolution, normalization, caching, determinism.

The pool-equality test uses the cheap Fig. 7(c) grid (pure routing math,
no DES) so the whole file stays in tier-1 time budget; the DES-backed
fig7b path is covered end-to-end by ``examples/parallel_sweep.py`` and its
smoke test.
"""

import json

import numpy as np
import pytest

from repro.experiments import fig7c
from repro.experiments.runner import (
    SweepCache,
    Trial,
    _jsonify,
    code_version,
    resolve_experiment,
    run_figure,
    run_sweep,
    run_trial,
)

SIZES = [8, 12]
COMMON = dict(seeds=[0, 1])


# ---------------------------------------------------------------- resolution


def test_resolve_registry_name():
    assert resolve_experiment("fig7c") is fig7c.run


def test_resolve_module_colon_function():
    assert resolve_experiment("fig7c:run_point") is fig7c.run_point
    assert resolve_experiment("repro.experiments.fig7c:run") is fig7c.run


def test_resolve_rejects_non_callable():
    with pytest.raises(ValueError):
        resolve_experiment("fig7c:DEFAULT_SIZES_SWEEP")
    with pytest.raises(ModuleNotFoundError):
        resolve_experiment("no_such_figure")


# ------------------------------------------------------------- normalization


def test_jsonify_matches_json_roundtrip():
    value = {
        "a": np.int64(3),
        "b": np.float64(0.5),
        "c": (1, 2, (3, 4)),
        "d": np.arange(3),
        "e": None,
        "f": np.bool_(True),
    }
    normalized = _jsonify(value)
    assert normalized == json.loads(json.dumps(normalized))
    assert normalized["a"] == 3 and type(normalized["a"]) is int
    assert normalized["c"] == [1, 2, [3, 4]]
    assert normalized["d"] == [0, 1, 2]
    assert normalized["f"] is True


def test_jsonify_rejects_opaque_objects():
    with pytest.raises(TypeError):
        _jsonify({"net": object()})


# ------------------------------------------------------------------ cache key


def test_cache_key_stable_and_kwarg_sensitive():
    a = Trial("fig7c", {"sizes": [8], "seeds": [0, 1]})
    b = Trial("fig7c", {"seeds": [0, 1], "sizes": [8]})  # dict order irrelevant
    c = Trial("fig7c", {"sizes": [9], "seeds": [0, 1]})
    assert a.cache_key(code="x") == b.cache_key(code="x")
    assert a.cache_key(code="x") != c.cache_key(code="x")
    # tuple/list kwargs normalize identically: same grid, same key
    d = Trial("fig7c", {"sizes": (8,), "seeds": (0, 1)})
    assert a.cache_key(code="x") == d.cache_key(code="x")


def test_cache_key_embeds_code_version():
    t = Trial("fig7c", {"sizes": [8]})
    assert t.cache_key(code="aaaa") != t.cache_key(code="bbbb")
    assert t.cache_key() == t.cache_key(code=code_version())
    assert len(code_version()) == 16


# --------------------------------------------------------------- sweep cache


def test_sweep_cache_miss_then_hit(tmp_path):
    cache = SweepCache(tmp_path)
    trial = Trial("fig7c", {"sizes": [8], "seeds": [0]})
    key = trial.cache_key(code="x")
    assert cache.get(key) is None
    assert (cache.hits, cache.misses) == (0, 1)
    cache.put(key, trial, [{"n_sensors": 8}])
    assert cache.get(key) == [{"n_sensors": 8}]
    assert (cache.hits, cache.misses) == (1, 1)
    # corrupt file degrades to a miss, never an exception
    path = next(tmp_path.rglob(f"{key}.json"))
    path.write_text("{not json")
    assert cache.get(key) is None


def test_run_sweep_consults_cache(tmp_path):
    cache = SweepCache(tmp_path)
    trials = [Trial("fig7c", {"sizes": [n], "seeds": [0]}) for n in SIZES]
    first = run_sweep(trials, cache=cache)
    assert cache.misses == len(trials) and cache.hits == 0
    again = run_sweep(trials, cache=cache)
    assert cache.hits == len(trials)
    assert again == first


# -------------------------------------------------------------- determinism


def test_pool_sequential_and_cache_rows_identical(tmp_path):
    sequential = _jsonify(fig7c.run(sizes=tuple(SIZES), **COMMON))
    pooled = run_figure("fig7c", "sizes", SIZES, processes=2, **COMMON)
    assert pooled == sequential

    cache = SweepCache(tmp_path)
    warmup = run_figure("fig7c", "sizes", SIZES, processes=2, cache=cache, **COMMON)
    cached = run_figure("fig7c", "sizes", SIZES, processes=2, cache=cache, **COMMON)
    assert warmup == sequential
    assert cached == sequential
    assert cache.hits == len(SIZES)


def test_run_trial_matches_direct_call():
    trial = Trial("fig7c", {"sizes": [8], "seeds": [0]})
    assert run_trial(trial) == _jsonify(fig7c.run(sizes=(8,), seeds=(0,)))


def test_run_figure_rejects_non_row_results():
    with pytest.raises(TypeError):
        run_figure("fig7c:run_point", "n_sensors", [8], seeds=[0])
