"""Campaign feed integration with the sweep runner (every execution path).

The feed must capture trial lifecycles from the in-process loop, the fork
pool (each worker writing its own shard), the resilient executor (retries,
timeouts, settled failures), cache hits, and journal resume — with the
exactly-once cached-emission contract and a duplicate-free merged feed
across a SIGKILL + resume, reconciling with what run_sweep returned.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro import obs
from repro.experiments.runner import (
    SweepCheckpoint,
    Trial,
    TrialFailure,
    run_sweep,
)
from repro.obs.campaign import campaign_status, load_feed, reduce_trials

W = "tests.experiments._resilience_workers"
REPO_ROOT = Path(__file__).resolve().parents[2]

ECHOES = [Trial(f"{W}:echo", {"value": v}) for v in range(3)]


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), str(REPO_ROOT)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return env


def test_feed_off_and_on_results_identical(tmp_path):
    plain = run_sweep(ECHOES)
    with_feed = run_sweep(ECHOES, campaign_dir=tmp_path / "camp")
    assert plain == with_feed  # the feed observes, never perturbs


def test_in_process_sweep_streams_lifecycle(tmp_path):
    camp = tmp_path / "camp"
    run_sweep(ECHOES, campaign_dir=camp)
    records = load_feed(camp)
    events = [r["event"] for r in records]
    assert events[0] == "sweep-start" and events[-1] == "sweep-end"
    assert events.count("launched") == 3 and events.count("completed") == 3
    completed = [r for r in records if r["event"] == "completed"]
    assert all(r["wall_s"] > 0 for r in completed)
    assert all(r["kwargs"] == {"value": i} for i, r in enumerate(completed))
    status = campaign_status(records)
    assert status.completed == 3 and status.declared == 3 and status.sweep_ended


def test_pool_workers_write_their_own_shards(tmp_path):
    camp = tmp_path / "camp"
    results = run_sweep(ECHOES, processes=2, campaign_dir=camp)
    assert results == run_sweep(ECHOES)
    shards = list(camp.glob("feed-*.jsonl"))
    assert len(shards) >= 2  # parent + at least one worker pid
    status = campaign_status(load_feed(camp))
    assert status.completed == 3 and status.sweep_ended


def test_resilient_retry_and_failure_events(tmp_path):
    camp = tmp_path / "camp"
    results = run_sweep(
        [Trial(f"{W}:boom", {"value": 5}), ECHOES[0]],
        retries=1,
        backoff_base=0.01,
        campaign_dir=camp,
    )
    assert isinstance(results[0], TrialFailure)
    records = load_feed(camp)
    retries = [r for r in records if r["event"] == "retry"]
    assert len(retries) == 1 and "boom(5)" in retries[0]["error"]
    assert retries[0]["next_delay_s"] > 0
    failed = [r for r in records if r["event"] == "failed"]
    assert len(failed) == 1 and failed[0]["attempts"] == 2
    status = campaign_status(records)
    assert status.failed == 1 and status.completed == 1 and status.retries == 1


def test_flaky_trial_heals_and_reports_attempt(tmp_path):
    camp = tmp_path / "camp"
    counter = tmp_path / "counter"
    results = run_sweep(
        [Trial(f"{W}:flaky", {"counter_path": str(counter), "fail_times": 1})],
        retries=2,
        backoff_base=0.01,
        campaign_dir=camp,
    )
    assert not isinstance(results[0], TrialFailure)
    records = load_feed(camp)
    completed = [r for r in records if r["event"] == "completed"]
    assert len(completed) == 1 and completed[0]["attempt"] == 2
    assert [r["event"] for r in records].count("retry") == 1


def test_timeout_event_lands_in_feed(tmp_path):
    camp = tmp_path / "camp"
    results = run_sweep(
        [Trial(f"{W}:sleepy", {"seconds": 60.0})],
        timeout=0.5,
        retries=0,
        campaign_dir=camp,
    )
    assert isinstance(results[0], TrialFailure) and results[0].timed_out
    records = load_feed(camp)
    timeouts = [r for r in records if r["event"] == "timeout"]
    assert len(timeouts) == 1 and timeouts[0]["timeout_s"] == 0.5
    failed = [r for r in records if r["event"] == "failed"]
    assert failed and failed[0]["timed_out"]


def test_cache_hits_emit_cached_records(tmp_path):
    camp1, camp2 = tmp_path / "c1", tmp_path / "c2"
    run_sweep(ECHOES, cache_dir=tmp_path / "cache", campaign_dir=camp1)
    run_sweep(ECHOES, cache_dir=tmp_path / "cache", campaign_dir=camp2)
    records = load_feed(camp2)
    cached = [r for r in records if r["event"] == "cached"]
    assert len(cached) == 3 and all(r["source"] == "cache" for r in cached)
    assert [r["event"] for r in records].count("launched") == 0


def test_trial_in_cache_and_journal_emits_cached_exactly_once(tmp_path):
    """Double-count regression: a trial satisfied by BOTH the cache and the
    resume journal must contribute one feed record and one aggregation
    increment, not two."""
    cache_dir = tmp_path / "cache"
    journal = tmp_path / "sweep.jsonl"
    run_sweep(ECHOES, cache_dir=cache_dir, checkpoint=journal)
    assert len(SweepCheckpoint(journal).load()) == 3  # journaled AND cached

    camp = tmp_path / "camp"
    tel = obs.Telemetry()
    results = run_sweep(
        ECHOES,
        cache_dir=cache_dir,
        checkpoint=journal,
        resume=True,
        campaign_dir=camp,
        telemetry=tel,
    )
    assert results == [{"value": v, "square": v * v} for v in range(3)]
    records = load_feed(camp)
    cached = [r for r in records if r["event"] == "cached"]
    assert len(cached) == 3  # once per trial, not once per source
    assert {r["key"] for r in cached} == set(SweepCheckpoint(journal).load())
    # Aggregation agrees: each trial counted once.
    snap = tel.metrics.snapshot()
    assert snap["runner.trials"]["value"] == 3
    assert snap["runner.cache_hits"]["value"] == 3


def test_sigkill_mid_sweep_then_resume_feed_is_duplicate_free(tmp_path):
    """Kill a real sweep streaming into a campaign dir, resume into the same
    dir: the merged feed must reconcile every trial exactly once and agree
    with what run_sweep returned."""
    camp = tmp_path / "camp"
    journal = tmp_path / "sweep.jsonl"
    values = list(range(5))
    kwargs = [{"value": v, "seconds": 0.25} for v in values]
    trials = [Trial(f"{W}:slow_echo", k) for k in kwargs]

    script = (
        "from repro.experiments.runner import Trial, run_sweep\n"
        f"kwargs = {kwargs!r}\n"
        f"trials = [Trial({W!r} + ':slow_echo', k) for k in kwargs]\n"
        f"run_sweep(trials, checkpoint={str(journal)!r},\n"
        f"          campaign_dir={str(camp)!r})\n"
    )
    proc = subprocess.Popen(
        [sys.executable, "-c", script], env=_env(), cwd=str(REPO_ROOT)
    )
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        if len(SweepCheckpoint(journal).load()) >= 2 or proc.poll() is not None:
            break
        time.sleep(0.05)
    if proc.poll() is None:
        os.kill(proc.pid, signal.SIGKILL)
    proc.wait(timeout=30)
    journaled_at_kill = set(SweepCheckpoint(journal).load())
    assert journaled_at_kill

    results = run_sweep(
        trials, checkpoint=journal, resume=True, campaign_dir=camp
    )
    assert results == [{"value": v, "square": v * v} for v in values]

    records = load_feed(camp)
    # The resumed run replays each journaled trial as `cached` exactly once.
    replayed = [r for r in records if r["event"] == "cached"]
    assert len(replayed) == len(journaled_at_kill)
    assert {r["key"] for r in replayed} == journaled_at_kill
    # Per-key reduction is duplicate-free: every trial lands exactly one
    # terminal state, and the rollup reconciles with the results list.
    slots = reduce_trials(records)
    assert len(slots) == len(trials)
    assert all(s["state"] in ("completed", "cached") for s in slots.values())
    status = campaign_status(records)
    assert status.done == len(trials) and status.failed == 0
    assert status.cached == len(journaled_at_kill)
    assert status.sweep_ended
