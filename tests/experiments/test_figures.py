"""Tests that the figure harnesses regenerate the paper's shapes (scaled down)."""

import pytest

from repro.experiments import ablations as _abl
from repro.experiments import fig2 as _fig2
from repro.experiments import fig4 as _fig4
from repro.experiments import fig6 as _fig6
from repro.experiments import fig7a as _fig7a
from repro.experiments import fig7c as _fig7c
from repro.experiments.common import format_table, series_from_rows


def test_fig2_rows():
    rows = _fig2.run()
    by = {r["schedule"]: r["slots"] for r in rows}
    assert by["one sensor at a time"] == 3
    assert by["greedy multi-hop polling"] == 2
    assert by["optimal"] == 2


def test_fig4_rows():
    rows = _fig4.run()
    by = {r["quantity"]: r["value"] for r in rows}
    assert by["deadline T = n+1 slots"] == 6
    assert by["canonical schedule slots"] == 6
    assert by["optimal schedule slots"] == 6


def test_fig6_rows():
    rows = _fig6.run()
    by = {r["quantity"]: r["value"] for r in rows}
    assert by["threshold B = A + 2"] == 10.0
    assert by["meets threshold"] is True


def test_fig6_no_instance():
    rows = _fig6.run(values=[5, 3, 1])
    by = {r["quantity"]: r["value"] for r in rows}
    assert by["meets threshold"] is False


def test_fig7a_point_shape():
    small = _fig7a.run_point(10, 20.0, seeds=(0,), n_cycles=4, warmup_cycles=1)
    big = _fig7a.run_point(25, 80.0, seeds=(0,), n_cycles=4, warmup_cycles=1)
    assert 0 < small["active_pct"] < big["active_pct"] <= 100.0


def test_fig7a_sweep_structure():
    rows = _fig7a.run(sizes=(10, 15), rates=(20.0, 40.0), seeds=(0,), n_cycles=3)
    assert len(rows) == 4
    series = series_from_rows(rows, x="n_sensors", y="active_pct", group="rate_bps")
    assert set(series) == {20.0, 40.0}
    # within each rate, active% grows with n
    for pts in series.values():
        assert pts[0][1] <= pts[1][1]


def test_fig7c_points_above_one():
    rows = _fig7c.run(sizes=(12, 30), seeds=(0, 1))
    assert rows[0]["lifetime_ratio"] > 0.9
    assert rows[1]["lifetime_ratio"] > rows[0]["lifetime_ratio"]
    assert rows[1]["lifetime_ratio"] > 1.2


def test_ablation_greedy_vs_optimal_ratio_bounded():
    rows = _abl.greedy_vs_optimal(n_sensors=5, seeds=(0, 1))
    for r in rows:
        assert 1.0 <= r["ratio"] <= 2.0


def test_ablation_delay_never_helps():
    for r in _abl.delay_vs_nodelay(n_vertices=3, seeds=(0, 1)):
        assert not r["delay_helps"]


def test_ablation_routing_load_improvement():
    rows = _abl.routing_minmax_vs_shortest(n_sensors=15, seeds=(0,))
    for r in rows:
        assert r["minmax_max_load"] <= r["bfs_max_load"]


def test_format_table_renders():
    text = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}])
    assert "a" in text and "10" in text and "0.125" in text
    assert format_table([]) == "(no data)"


def test_ablation_protocol_model_unsafe_physical_safe():
    rows = _abl.protocol_model_vs_physical(n_sensors=18, seeds=(0, 1))
    assert all(r["physical_bad_slots"] == 0 for r in rows)
    assert any(r["protocol_bad_slots"] > 0 for r in rows)


def test_ablation_shadowing_changes_connectivity():
    rows = _abl.shadowing_discovery(n_sensors=18, seeds=(0, 1))
    for r in rows:
        assert r["broken_by_fading"] + r["gained_by_fading"] > 0


def test_ablation_energy_aware_improves_normalized_load():
    rows = _abl.energy_aware_routing(n_sensors=18, seeds=(0, 1))
    for r in rows:
        assert r["aware_max_normload"] <= r["uniform_max_normload"] + 1e-9
    assert any(r["improvement"] > 1.1 for r in rows)
