"""Top-level worker functions for the runner-resilience tests.

These live in an importable module (not inside a test function) because the
self-healing executor re-resolves ``"tests.experiments._resilience_workers:fn"``
inside each forked worker — closures would not survive the trip.  Run tests
with the repo root on ``PYTHONPATH`` (pytest's rootdir conftest handles it).

Cross-process state (how many attempts happened so far) is carried in a
scratch file named by the trial kwargs, so retries are observable from the
parent without shared memory.
"""

from __future__ import annotations

import os
import signal
import time


def echo(value: int = 0) -> dict:
    """Deterministic happy-path worker."""
    return {"value": value, "square": value * value}


def boom(value: int = 0) -> dict:
    """Always raises — exercises retry-then-skip."""
    raise RuntimeError(f"boom({value})")


def sleepy(seconds: float = 60.0, value: int = 0) -> dict:
    """Outlives any sane per-trial timeout — exercises hang detection."""
    time.sleep(seconds)
    return {"value": value}


def die(value: int = 0) -> dict:
    """Exits without a word (as a segfault or OOM-kill would) — exercises
    silently-dead worker detection via pipe EOF."""
    os.kill(os.getpid(), signal.SIGKILL)
    return {"value": value}  # pragma: no cover - unreachable


def slow_echo(value: int = 0, seconds: float = 0.25, marker_dir: str | None = None) -> dict:
    """Slow deterministic worker for the kill/resume test.

    Touches ``marker_dir/exec-<value>`` *before* sleeping, so the test can
    count how many times each trial actually executed across a kill+resume.
    """
    if marker_dir:
        with open(os.path.join(marker_dir, f"exec-{value}"), "ab") as fh:
            fh.write(b"x")
            fh.flush()
    time.sleep(seconds)
    return {"value": value, "square": value * value}


def flaky(counter_path: str, fail_times: int = 1, value: int = 0) -> dict:
    """Fail the first *fail_times* attempts, then succeed.

    Attempt count persists in *counter_path* (one byte appended per call) so
    each forked attempt sees how many came before it.
    """
    with open(counter_path, "ab") as fh:
        fh.write(b"x")
        fh.flush()
    attempts = os.path.getsize(counter_path)
    if attempts <= fail_times:
        raise RuntimeError(f"flaky attempt {attempts} of {fail_times} failing")
    return {"value": value, "attempts": attempts}
