"""Self-healing sweep runner tests: retry, timeout, crash, kill+resume.

The workers live in :mod:`tests.experiments._resilience_workers` (top-level
module, addressable as ``"tests.experiments._resilience_workers:fn"``)
because the resilient executor re-resolves the experiment inside each forked
worker.  The kill/resume test SIGKILLs a *real* sweep subprocess mid-flight
and asserts the resumed run is bit-for-bit identical to an uninterrupted one
— the acceptance criterion for the checkpoint journal.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments.runner import (
    SweepCache,
    SweepCheckpoint,
    Trial,
    TrialFailure,
    code_version,
    run_sweep,
)

W = "tests.experiments._resilience_workers"
REPO_ROOT = Path(__file__).resolve().parents[2]


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), str(REPO_ROOT)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return env


# ------------------------------------------------------- cache crash safety


def test_cache_put_is_atomic_no_temp_left_behind(tmp_path):
    cache = SweepCache(tmp_path)
    trial = Trial(f"{W}:echo", {"value": 1})
    key = trial.cache_key()
    cache.put(key, trial, {"v": 1})
    assert cache.get(key) == {"v": 1}
    leftovers = [p for p in tmp_path.rglob("*.tmp")]
    assert leftovers == []


def test_cache_evicts_corrupt_entry_and_recovers(tmp_path):
    cache = SweepCache(tmp_path)
    trial = Trial(f"{W}:echo", {"value": 2})
    key = trial.cache_key()
    cache.put(key, trial, {"v": 2})
    path = cache._path(key)
    path.write_text("{ truncated by a crash", encoding="utf-8")
    assert cache.get(key) is None  # corrupt -> clean miss
    assert cache.evictions == 1
    assert not path.exists()  # evicted: the poison is gone for good
    cache.put(key, trial, {"v": 2})  # and the slot is usable again
    assert cache.get(key) == {"v": 2}


def test_cache_evicts_wrong_shape_payload(tmp_path):
    cache = SweepCache(tmp_path)
    trial = Trial(f"{W}:echo", {"value": 3})
    key = trial.cache_key()
    path = cache._path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps([1, 2, 3]), encoding="utf-8")  # valid JSON, not an entry
    assert cache.get(key) is None
    assert cache.evictions == 1


# ------------------------------------------------------- checkpoint journal


def test_checkpoint_roundtrip_and_truncated_tail(tmp_path):
    journal = SweepCheckpoint(tmp_path / "sweep.jsonl")
    journal.append("k1", result={"v": 1})
    journal.append("k2", result={"v": 2})
    with open(journal.path, "a", encoding="utf-8") as fh:
        fh.write('{"key": "k3", "result"')  # a SIGKILL mid-write
    loaded = journal.load()
    assert set(loaded) == {"k1", "k2"}  # torn line skipped, rest intact
    assert loaded["k1"]["result"] == {"v": 1}


def test_checkpoint_records_failures(tmp_path):
    journal = SweepCheckpoint(tmp_path / "sweep.jsonl")
    failure = TrialFailure(
        experiment=f"{W}:boom", kwargs={"value": 1}, error="boom", attempts=3
    )
    journal.append("k1", failure=failure)
    loaded = journal.load()
    assert TrialFailure.from_dict(loaded["k1"]["failure"]) == failure


# ------------------------------------------------- retry / timeout / crash


def test_raising_worker_is_retried_then_skipped():
    result = run_sweep(
        [Trial(f"{W}:boom", {"value": 7}), Trial(f"{W}:echo", {"value": 2})],
        timeout=30.0,
        retries=2,
        backoff_base=0.01,
    )
    failure, ok = result
    assert isinstance(failure, TrialFailure)
    assert failure.attempts == 3 and not failure.timed_out
    assert "boom(7)" in failure.error
    assert ok == {"value": 2, "square": 4}  # the failure never poisons neighbours


def test_flaky_worker_succeeds_on_retry(tmp_path):
    counter = tmp_path / "counter"
    result = run_sweep(
        [Trial(f"{W}:flaky", {"counter_path": str(counter), "fail_times": 1, "value": 3})],
        retries=2,
        backoff_base=0.01,
    )
    assert result == [{"value": 3, "attempts": 2}]


def test_hanging_worker_times_out_and_is_replaced():
    start = time.monotonic()
    result = run_sweep(
        [Trial(f"{W}:sleepy", {"seconds": 60.0})],
        timeout=0.5,
        retries=1,
        backoff_base=0.01,
    )
    elapsed = time.monotonic() - start
    failure = result[0]
    assert isinstance(failure, TrialFailure)
    assert failure.timed_out and failure.attempts == 2
    assert elapsed < 30.0  # the 60 s hang was killed, twice, well within budget


def test_silently_dying_worker_is_detected():
    result = run_sweep(
        [Trial(f"{W}:die", {})], timeout=30.0, retries=1, backoff_base=0.01
    )
    failure = result[0]
    assert isinstance(failure, TrialFailure)
    assert "died" in failure.error and failure.attempts == 2


def test_resume_requires_checkpoint():
    with pytest.raises(ValueError, match="checkpoint"):
        run_sweep([Trial(f"{W}:echo", {})], resume=True)


def test_failures_are_checkpointed_not_retried_on_resume(tmp_path):
    journal_path = tmp_path / "sweep.jsonl"
    trials = [Trial(f"{W}:boom", {"value": 1})]
    first = run_sweep(trials, retries=0, checkpoint=journal_path)
    assert isinstance(first[0], TrialFailure)
    counter_before = len(SweepCheckpoint(journal_path).load())
    second = run_sweep(trials, retries=0, checkpoint=journal_path, resume=True)
    assert second[0] == first[0]  # replayed from the journal ...
    assert len(SweepCheckpoint(journal_path).load()) == counter_before  # ... not re-run


# --------------------------------------------------------- kill + resume


def test_sigkill_mid_sweep_then_resume_is_bit_for_bit(tmp_path):
    """Kill a real sweep subprocess mid-flight; resume must (a) not re-run
    checkpointed trials and (b) produce results identical to a run that was
    never interrupted."""
    journal_path = tmp_path / "sweep.jsonl"
    marker_dir = tmp_path / "markers"
    marker_dir.mkdir()
    values = list(range(6))
    kwargs = [
        {"value": v, "seconds": 0.25, "marker_dir": str(marker_dir)} for v in values
    ]
    trials = [Trial(f"{W}:slow_echo", k) for k in kwargs]

    script = (
        "from repro.experiments.runner import Trial, run_sweep\n"
        f"kwargs = {kwargs!r}\n"
        f"trials = [Trial({W!r} + ':slow_echo', k) for k in kwargs]\n"
        f"run_sweep(trials, checkpoint={str(journal_path)!r})\n"
    )
    proc = subprocess.Popen(
        [sys.executable, "-c", script], env=_env(), cwd=str(REPO_ROOT)
    )
    # Wait until at least two trials are checkpointed, then pull the plug.
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        done = len(SweepCheckpoint(journal_path).load())
        if done >= 2:
            break
        if proc.poll() is not None:  # finished before we could kill it
            break
        time.sleep(0.05)
    if proc.poll() is None:
        os.kill(proc.pid, signal.SIGKILL)
    proc.wait(timeout=30)

    completed_at_kill = set(SweepCheckpoint(journal_path).load())
    assert completed_at_kill  # the sweep made some progress before dying
    code = code_version()
    value_by_key = {t.cache_key(code): t.kwargs["value"] for t in trials}
    marker_counts_at_kill = {
        v: (marker_dir / f"exec-{v}").stat().st_size
        for v in values
        if (marker_dir / f"exec-{v}").exists()
    }

    resumed = run_sweep(trials, checkpoint=journal_path, resume=True)
    uninterrupted = run_sweep(
        [Trial(f"{W}:slow_echo", dict(k, marker_dir=None)) for k in kwargs]
    )
    assert resumed == uninterrupted  # bit-for-bit: kill+resume == never killed

    for key in completed_at_kill:
        v = value_by_key[key]
        assert (marker_dir / f"exec-{v}").stat().st_size == marker_counts_at_kill[v], (
            f"checkpointed trial value={v} was re-executed on resume"
        )
