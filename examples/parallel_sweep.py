"""Parallel sweep runner demo: pool fan-out, bit-for-bit determinism, caching.

Runs a reduced-scale Fig. 7(b) grid (throughput vs offered load) three ways:

1. sequentially, straight through ``fig7b.run``;
2. through ``repro.experiments.runner`` with a 2-process pool — the rows
   must match the sequential run exactly (the determinism contract);
3. through the runner again with the on-disk cache warm — every trial is a
   hit, so no simulation executes at all.

Run it::

    PYTHONPATH=src python examples/parallel_sweep.py
"""

from __future__ import annotations

import tempfile
import time

from repro.experiments import fig7b
from repro.experiments.runner import SweepCache, run_figure
from repro.experiments.runner import _jsonify  # normalization used by the runner

# Reduced scale: 2 offered loads x (polling + 2 S-MAC duty cycles), 12 sensors.
GRID = [210.0, 450.0]
COMMON = dict(
    duty_cycles=(1.0, 0.5),
    n_sensors=12,
    duration=20.0,
    warmup=5.0,
    polling_cycles=4,
    polling_cycle_length=5.0,
    seed=0,
    # Engine choice rides through Trial kwargs like any grid parameter;
    # "vector" (the default) and "scalar" produce bit-identical rows, so
    # the determinism checks below hold under either.
    engine="vector",
)


def main() -> None:
    print("== parallel sweep demo: fig7b at reduced scale ==")

    t0 = time.perf_counter()
    sequential = _jsonify(fig7b.run(offered_loads=tuple(GRID), **COMMON))
    t_seq = time.perf_counter() - t0
    print(f"sequential run : {len(sequential)} rows in {t_seq:.2f} s")

    with tempfile.TemporaryDirectory() as tmp:
        cache = SweepCache(tmp)

        t0 = time.perf_counter()
        parallel = run_figure(
            "fig7b", "offered_loads", GRID, processes=2, cache=cache, **COMMON
        )
        t_par = time.perf_counter() - t0
        print(
            f"pool run (2 px): {len(parallel)} rows in {t_par:.2f} s "
            f"(cache: {cache.hits} hits, {cache.misses} misses)"
        )
        print(f"parallel rows match sequential: {parallel == sequential}")

        t0 = time.perf_counter()
        cached = run_figure(
            "fig7b", "offered_loads", GRID, processes=2, cache=cache, **COMMON
        )
        t_hit = time.perf_counter() - t0
        hit = cache.hits == len(GRID) and cached == sequential
        print(f"cached rerun   : {len(cached)} rows in {t_hit:.2f} s")
        print(f"cache hit: {hit}")

    if parallel != sequential or not hit:
        raise SystemExit("determinism or cache contract violated")
    print("\nsweep runner: pool, sequential, and cached paths all agree")


if __name__ == "__main__":
    main()
