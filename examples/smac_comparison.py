"""Polling vs S-MAC + AODV: a compact Fig. 7(b).

Runs both MACs over the *same* PHY model and deployment at three offered
loads and prints the throughput table.  Expected outcome (the paper's):
polling delivers everything at every load while sleeping most of the time;
S-MAC loses packets to collisions and AODV control overhead, and degrades
sharply as its duty cycle shrinks.

Run:  python examples/smac_comparison.py            (~1 minute)
"""

from repro.net import (
    PollingSimConfig,
    SmacSimConfig,
    run_polling_simulation,
    run_smac_simulation,
)

N_SENSORS = 20
OFFERED = (140.0, 500.0, 800.0)  # total Bps
DUTIES = (1.0, 0.5, 0.3)


def main() -> None:
    print(f"{'scheme':<18} {'offered':>8} {'delivered':>10} {'active%':>8}")
    print("-" * 48)
    for offered in OFFERED:
        rate = offered / N_SENSORS
        poll = run_polling_simulation(
            PollingSimConfig(
                n_sensors=N_SENSORS, rate_bps=rate, cycle_length=5.0, n_cycles=8, seed=3
            )
        )
        print(
            f"{'Multihop Polling':<18} {offered:>8.0f} "
            f"{poll.throughput_ratio * offered:>10.0f} "
            f"{100 * poll.mean_active_fraction:>8.1f}"
        )
        for duty in DUTIES:
            smac = run_smac_simulation(
                SmacSimConfig(
                    n_sensors=N_SENSORS,
                    rate_bps=rate,
                    duty_cycle=duty,
                    duration=40.0,
                    warmup=8.0,
                    seed=3,
                )
            )
            label = "SMAC no-sleep" if duty >= 1.0 else f"SMAC {int(duty*100)}% duty"
            print(
                f"{label:<18} {offered:>8.0f} {smac.throughput_bps:>10.0f} "
                f"{100 * float(smac.active_fraction.mean()):>8.1f}"
            )
        print("-" * 48)
    print("polling keeps 100% delivery while being asleep most of the time;")
    print("S-MAC trades throughput for sleep and pays AODV/collision overhead.")


if __name__ == "__main__":
    main()
