"""Self-healing sweep demo: structured failure, SIGKILL, checkpoint resume.

Three acts, all on a reduced fault-ablation grid (12 sensors, 4 cycles):

1. a trial with broken kwargs raises in its worker; the runner retries it,
   then settles a structured ``TrialFailure`` into its result slot while
   the healthy neighbour trials complete normally;
2. a real sweep subprocess is SIGKILLed mid-flight, exactly as an OOM
   killer or a preempted node would — the checkpoint journal keeps every
   trial that finished;
3. ``run_sweep(..., resume=True)`` replays the journal, re-runs only the
   missing trials, and the merged rows are bit-for-bit identical to a run
   that was never interrupted.

Run it::

    PYTHONPATH=src python examples/resilient_sweep.py
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.experiments.runner import (
    SweepCheckpoint,
    Trial,
    TrialFailure,
    run_sweep,
)

SCALE = dict(n_sensors=12, n_cycles=4)
TRIALS = [Trial("fault_ablation", dict(SCALE, seed=seed)) for seed in range(4)]


def act_one_structured_failure() -> None:
    print("== act 1: a broken trial fails structurally, neighbours survive ==")
    bad = Trial("fault_ablation", {"bogus_option": True})
    results = run_sweep([bad, TRIALS[0]], retries=1, backoff_base=0.05)
    failure, healthy = results
    assert isinstance(failure, TrialFailure)
    print(f"bad trial   : TrialFailure after {failure.attempts} attempts")
    print(f"              {failure.error.splitlines()[0][:70]}")
    print(f"good trial  : {len(healthy)} rows delivered alongside the failure")


def act_two_and_three_kill_then_resume() -> None:
    print("== act 2: SIGKILL a sweep mid-flight ==")
    with tempfile.TemporaryDirectory() as tmp:
        journal_path = Path(tmp) / "sweep.jsonl"
        script = (
            "from repro.experiments.runner import Trial, run_sweep\n"
            f"kwargs = {[t.kwargs for t in TRIALS]!r}\n"
            "trials = [Trial('fault_ablation', k) for k in kwargs]\n"
            f"run_sweep(trials, checkpoint={str(journal_path)!r})\n"
        )
        proc = subprocess.Popen([sys.executable, "-c", script])
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if len(SweepCheckpoint(journal_path).load()) >= 1 or proc.poll() is not None:
                break
            time.sleep(0.05)
        if proc.poll() is None:
            os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
        survived = len(SweepCheckpoint(journal_path).load())
        print(f"killed the sweep with {survived}/{len(TRIALS)} trials checkpointed")

        print("== act 3: resume from the journal ==")
        t0 = time.perf_counter()
        resumed = run_sweep(TRIALS, checkpoint=journal_path, resume=True)
        t_resume = time.perf_counter() - t0
        t0 = time.perf_counter()
        uninterrupted = run_sweep(TRIALS)
        t_full = time.perf_counter() - t0
        print(
            f"resume re-ran {len(TRIALS) - survived} trials in {t_resume:.2f} s "
            f"(full sweep: {t_full:.2f} s)"
        )
        print(f"resumed rows match uninterrupted run: {resumed == uninterrupted}")


def main() -> None:
    act_one_structured_failure()
    act_two_and_three_kill_then_resume()
    print("kill + resume: bit-for-bit, no trial ran twice, no progress lost")


if __name__ == "__main__":
    main()
