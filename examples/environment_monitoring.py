"""Environmental monitoring: a full cluster lifecycle on the event-driven stack.

The paper's motivating application is ground-temperature monitoring: cheap
sensors sample slowly, sleep almost always, and a powerful cluster head
collects everything by polling.  This example runs the complete system for
a 40-sensor cluster:

* deploy the field and build the PHY (two-ray ground, 200 kbps);
* discover connectivity from the radio, route with min-max-load flows;
* run 8 duty cycles of CBR traffic through the polling MAC
  (wakeup -> ack set-cover -> slotted pipelined polling -> sleep);
* report throughput, per-state energy, active time, and the sector
  partition the head would use to stretch lifetime further.

Run:  python examples/environment_monitoring.py
"""

import numpy as np

from repro import PathRotator, merge_flow_to_tree, solve_min_max_load
from repro.core import partition_into_sectors
from repro.mac import geometric_oracle
from repro.metrics import EnergyRateModel, energy_report, evaluate_lifetime_ratio_for_cluster
from repro.net import PollingSimConfig, run_polling_simulation

CONFIG = PollingSimConfig(
    n_sensors=40,
    rate_bps=30.0,  # each sensor ~ one 80-byte reading every 2.7 s
    cycle_length=8.0,
    n_cycles=8,
    seed=7,
)


def main() -> None:
    print(f"deploying {CONFIG.n_sensors} sensors, {CONFIG.rate_bps} Bps each, "
          f"{CONFIG.n_cycles} cycles of {CONFIG.cycle_length}s ...")
    result = run_polling_simulation(CONFIG)

    print(f"\n--- delivery ---")
    print(f"packets generated: {result.packets_generated}")
    print(f"packets delivered: {result.packets_delivered}  "
          f"(throughput ratio {result.throughput_ratio:.3f})")
    print(f"mean sensor active time: {100 * result.mean_active_fraction:.1f}% "
          f"(sensors sleep the rest)")

    print(f"\n--- duty cycles ---")
    for s in result.mac.cycle_stats:
        print(f"  cycle {s.cycle_index}: duty {s.duty_time*1000:7.1f} ms | "
              f"ack slots {s.ack_slots:3d} | data slots {s.data_slots:4d} | "
              f"delivered {s.packets_delivered:3d}")

    report = energy_report(result.phy)
    print(f"\n--- energy (per-sensor means over {result.elapsed:.0f}s) ---")
    print(f"  consumed: {1000 * report.consumed_j.mean():.2f} mJ "
          f"(max {1000 * report.max_sensor_energy_j:.2f} mJ)")
    print(f"  tx time: {report.tx_s.mean()*1000:.1f} ms, "
          f"rx time: {report.rx_s.mean()*1000:.1f} ms, "
          f"sleep: {report.sleep_s.mean():.1f} s")

    # --- what sectoring would buy (Sec. IV) -----------------------------------
    cluster = result.phy.cluster.with_packets(np.ones(CONFIG.n_sensors, dtype=np.int64))
    oracle, cluster = geometric_oracle(cluster, sensor_range_m=CONFIG.sensor_range_m)
    life = evaluate_lifetime_ratio_for_cluster(cluster, oracle, model=EnergyRateModel())
    print(f"\n--- sectoring (Sec. IV) ---")
    print(f"  sectors: {life.n_sectors}, whole-cluster polling: "
          f"{life.unsectored_polling_slots} slots, per-sector: {life.sector_polling_slots}")
    print(f"  projected lifetime ratio (sectored / unsectored): {life.lifetime_ratio:.2f}x")
    print("\nsector layout:")
    print(life.partition.describe())


if __name__ == "__main__":
    main()
