"""The NP-hardness reductions, executed.

The paper proves minimum-time multi-hop polling NP-hard by reduction from
Hamiltonian Path (Lemma 1 / Thm. 1) and optimal sector partitioning
NP-complete by reduction from Partition (Thm. 5).  Papers only argue these
on paper; here both run:

1. a random graph becomes a TSRF polling instance whose schedule meets the
   deadline n+1 iff the graph has a Hamiltonian path — both certificate
   conversions executed and verified;
2. the interference pattern is realized with *physical* per-pair received
   powers (no tabulated oracle), showing it isn't a modelling artifact;
3. a Partition multiset becomes a cluster whose optimal sector split meets
   the pseudo-rate threshold iff the multiset splits evenly.

Run:  python examples/hardness_gadgets.py
"""

from itertools import combinations

import numpy as np

from repro.core import RequestPool, solve_optimal
from repro.hardness import (
    brute_force_min_pseudo_rate,
    cpar_from_partition,
    find_hamiltonian_path,
    find_partition,
    hamiltonian_path_from_schedule,
    physical_oracle_for_graph,
    random_graph,
    schedule_from_hamiltonian_path,
    sectors_from_subsets,
    tsrfp_from_graph,
)
from repro.topology import HEAD


def tsrfp_demo() -> None:
    print("=== TSRFP <-> Hamiltonian Path (Lemma 1) ===")
    for seed in (1, 4):
        graph = random_graph(5, 0.5, seed=seed)
        inst = tsrfp_from_graph(graph)
        plan = inst.routing_plan()
        hp = find_hamiltonian_path(graph)
        opt = solve_optimal(plan, inst.oracle)
        verdict = "<= deadline" if opt.makespan <= inst.deadline else "> deadline"
        print(f"\ngraph seed {seed}: Hamiltonian path: {hp}")
        print(f"optimal polling makespan: {opt.makespan} slots ({verdict} {inst.deadline})")
        if hp is not None:
            sched = schedule_from_hamiltonian_path(inst, hp)
            sched.validate(list(RequestPool(plan)), inst.oracle)
            extracted = hamiltonian_path_from_schedule(inst, sched)
            print(f"HP -> schedule -> HP round trip: {extracted}")
        # Physical realization: arbitrary received powers produce the exact
        # same pairwise compatibility as the gadget's table.
        phys = physical_oracle_for_graph(graph)
        links = [(inst.tsrf.second_level(i), inst.tsrf.first_level(i)) for i in range(5)]
        links += [(inst.tsrf.first_level(i), HEAD) for i in range(5)]
        agree = all(
            phys.compatible([a, b]) == inst.oracle.compatible([a, b])
            for a, b in combinations(links, 2)
            if len({a[0], a[1], b[0], b[1]}) == 4
        )
        print(f"physical-model realization agrees with gadget oracle: {agree}")


def cpar_demo() -> None:
    print("\n=== CPAR <- Partition (Thm. 5) ===")
    for values in ([3, 2, 1, 2], [5, 3, 1]):
        inst = cpar_from_partition(values)
        split = find_partition(values)
        best_rate, _ = brute_force_min_pseudo_rate(inst)
        print(f"\nset {values}: threshold B = {inst.threshold}")
        print(f"best achievable max pseudo rate over all sector splits: {best_rate}")
        if split is not None:
            left, right = split
            partition = sectors_from_subsets(inst, left, right)
            print(f"equal-sum split {[values[i] for i in left]} / "
                  f"{[values[i] for i in right]} -> max pseudo rate "
                  f"{partition.max_pseudo_rate()} (meets threshold: "
                  f"{partition.max_pseudo_rate() <= inst.threshold})")
        else:
            print(f"no equal-sum split exists -> best rate {best_rate} > B: "
                  f"{best_rate > inst.threshold}")


if __name__ == "__main__":
    tsrfp_demo()
    cpar_demo()
