"""Fault injection: kill a relay mid-run and watch the head recover.

Runs the same seeded 30-sensor cluster twice — fault-free, then with a
FaultPlan that crashes the busiest relay in the middle of a data phase —
and prints how gracefully the polling system degrades: requests through the
dead node exhaust their retry budgets, the head localizes the death from
missing ack counts, blacklists the node, repairs routing around it at the
next duty-cycle boundary, and keeps serving every sensor it still can.

Run:  python examples/fault_injection.py
"""

from repro.faults import FaultPlan, NodeCrash
from repro.net.cluster_sim import PollingSimConfig, run_polling_simulation

# --- fault-free reference run -------------------------------------------------
config = PollingSimConfig(n_sensors=30, n_cycles=8, seed=3)
baseline = run_polling_simulation(config)
print(f"fault-free: {baseline.packets_delivered} packets delivered, "
      f"throughput ratio {baseline.throughput_ratio:.3f}")

# --- pick a victim: the first relay the min-max routing actually uses ---------
paths = baseline.mac.routing.routing_plan().paths
victim = min(n for p in paths.values() for n in p[1:-1] if n >= 0)
print(f"killing relay s{victim} at t=20.3 s (mid data phase of cycle 2)\n")

# --- the faulted run ----------------------------------------------------------
plan = FaultPlan(crashes=[NodeCrash(node=victim, at=20.3)])
faulted = run_polling_simulation(
    PollingSimConfig(n_sensors=30, n_cycles=8, seed=3, fault_plan=plan)
)
deg = faulted.degradation

print(f"delivered        : {deg.delivered} (was {baseline.packets_delivered})")
print(f"retry-exhausted  : {deg.failed}")
print(f"delivery ratio   : {deg.delivery_ratio:.3f}")
print(f"ground-truth dead: {sorted(deg.dead_true)}")
print(f"head's blacklist : {sorted(deg.blacklisted)} "
      f"(false positives: {sorted(deg.false_positives)})")
print(f"unreachable      : {sorted(deg.unreachable)}")
print(f"coverage         : {deg.surviving_coverage:.3f}")
print(f"stranded packets : {deg.stranded_packets} (inside the dead relay)")
print(f"route repairs    : {deg.route_repairs}")

assert deg.delivery_ratio < 1.0
assert victim in deg.blacklisted
assert deg.route_repairs >= 1
print("\nthe head found the dead relay, repaired routing, and kept polling.")
