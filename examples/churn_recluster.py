"""Dynamic-network robustness: churn, mobility, and online re-clustering.

A seeded 24-sensor cluster suffers a realistic dynamic workload — two new
sensors power up mid-run, two announced departures pull nodes out, and
every survivor drifts at 0.4 m/s — and the run is repeated under the three
re-cluster policies the MAC supports:

* ``off``       — today's reactive baseline: announced leaves are repaired
  around, but joiners sit dark forever and routing is never re-planned
  from the moved positions;
* ``staleness`` — the head re-forms the cluster when its staleness trigger
  fires (membership changed, repeated repair fallbacks, overload);
* ``periodic``  — the head re-forms every 3 cycles no matter what.

Same fault plan, same seed, same detector — only the re-form policy
differs.  The table shows what keeping the plan fresh buys (joiners
served, higher coverage) and what it costs (re-form passes, roster
announcement bytes on the air).

Run:  python examples/churn_recluster.py
"""

from repro.faults import FaultPlan, Mobility, NodeJoin, NodeLeave
from repro.net.cluster_sim import PollingSimConfig, run_polling_simulation
from repro.topology import StalenessTrigger

plan = FaultPlan(
    joins=[
        NodeJoin(at=18.0, position=(60.0, 150.0)),
        NodeJoin(at=43.0, position=(140.0, 45.0)),
    ],
    leaves=[NodeLeave(node=4, at=27.0), NodeLeave(node=11, at=55.0)],
    mobility=Mobility(speed_mps=0.4),
)

POLICIES = {
    "off": dict(recluster="off"),
    "staleness": dict(recluster="staleness", recluster_trigger=StalenessTrigger()),
    "periodic": dict(
        recluster="periodic",
        recluster_trigger=StalenessTrigger(
            membership_delta=0, repair_fallbacks=0, period_cycles=3
        ),
    ),
}

print("2 joins, 2 announced leaves, 0.4 m/s drift; 24 sensors, 12 cycles")
print(f"{'policy':<10} {'delivered':>9} {'reclusters':>10} {'joins adm':>9} "
      f"{'coverage':>8} {'plan age':>8} {'announce B':>10}")
results = {}
for name, knobs in POLICIES.items():
    res = run_polling_simulation(
        PollingSimConfig(n_sensors=24, n_cycles=12, seed=7, fault_plan=plan, **knobs)
    )
    results[name] = res
    s = res.staleness
    ought = s.present_final + (s.joins_powered - s.joins_admitted)
    coverage = s.served_final / ought if ought else 1.0
    print(f"{name:<10} {res.packets_delivered:>9} {s.reclusters:>10} "
          f"{s.joins_admitted:>9} {coverage:>8.3f} {s.mean_plan_age_cycles:>8.2f} "
          f"{s.reform_announce_bytes:>10}")

stale = results["staleness"].staleness
for entry in results["staleness"].mac.recluster_log:
    print(f"  t={entry['time']:>5.1f} s  re-form ({entry['reason']}): "
          f"admitted {entry['admitted']}, excluded {len(entry['excluded'])}, "
          f"{entry['roster_bytes']} roster bytes")

assert results["off"].staleness.joins_admitted == 0
assert stale.joins_admitted == 2
assert stale.reclusters >= 1
assert results["staleness"].violations == []
print("\njoiners were admitted, departures repaired, and the plan kept fresh.")
