"""The second layer: many clusters, Voronoi forming, channels, tokens.

Deploys 120 sensors and 6 cluster heads over a 500 m field, forms clusters
by Voronoi cells (Sec. V-A), discovers members hop by hop, routes each
cluster, estimates each duty cycle's length with the real polling
scheduler, and then compares the two inter-cluster coordination schemes of
Sec. V-G: token rotation vs channel coloring.

Run:  python examples/multicluster.py
"""

import numpy as np

from repro import solve_min_max_load
from repro.core import OnlinePollingScheduler
from repro.mac import MacTimings, geometric_oracle
from repro.net import TokenSchedule, assign_channels, concurrency_gain
from repro.radio.packet import DEFAULT_SIZES
from repro.topology import bfs_discover, cluster_adjacency, form_clusters
from repro.sim import RngStreams

FIELD = 500.0
RANGE = 55.0
N_SENSORS = 120
HEAD_POSITIONS = np.array(
    [[110, 120], [360, 110], [120, 360], [390, 380], [250, 240], [430, 250]],
    dtype=float,
)


def main() -> None:
    rng = RngStreams(11).get("field")
    sensors = rng.uniform(0, FIELD, size=(N_SENSORS, 2))
    net = form_clusters(sensors, HEAD_POSITIONS, comm_range=RANGE)
    print(f"{net.n_clusters} clusters over a {FIELD:.0f} m field:")

    timings = MacTimings()
    slot = timings.poll_slot_time(200_000.0, DEFAULT_SIZES, DEFAULT_SIZES.data)
    duties: list[float] = []
    for k, cluster in enumerate(net.clusters):
        if cluster.n_sensors == 0 or not cluster.is_connected():
            # Strays out of range of their nearest head would join another
            # cluster in a real deployment; report and skip.
            reachable = int(cluster.min_hop_counts()[np.isfinite(cluster.min_hop_counts())].size)
            print(f"  cluster {k}: {cluster.n_sensors} members, "
                  f"{reachable} reachable — skipping unreachable strays")
        discovery = bfs_discover(cluster)
        reachable_members = discovery.discovered
        if not reachable_members:
            duties.append(0.0)
            continue
        packets = np.zeros(cluster.n_sensors, dtype=np.int64)
        packets[reachable_members] = 1
        sub = cluster.with_packets(packets)
        oracle, sub = geometric_oracle(sub, sensor_range_m=RANGE)
        plan = solve_min_max_load(sub).routing_plan()
        result = OnlinePollingScheduler.poll(plan, oracle)
        duty = result.slots_elapsed * slot
        duties.append(duty)
        print(f"  cluster {k}: {len(reachable_members):3d} sensors, "
              f"max hop {plan.max_hop_count()}, polling {result.slots_elapsed:3d} slots "
              f"= {duty*1000:6.1f} ms")

    # --- token rotation (simple, serial) ---------------------------------------
    token = TokenSchedule(duty_durations=duties, handoff_cost=0.002)
    print(f"\ntoken rotation: period {token.period*1000:.1f} ms, "
          f"utilization {100*token.utilization():.0f}%")
    for k, (a, b) in enumerate(token.windows()):
        print(f"  cluster {k} window: {a*1000:7.1f} .. {b*1000:7.1f} ms")

    # --- channel coloring (concurrent) ------------------------------------------
    colors = assign_channels(net, interference_range=2 * RANGE)
    print(f"\nchannel assignment (interference range {2*RANGE:.0f} m): "
          f"{colors.tolist()} -> {int(colors.max()) + 1} channels")
    gain = concurrency_gain(net, 2 * RANGE, duties)
    print(f"coloring lets all clusters poll concurrently: "
          f"{gain:.1f}x shorter than token rotation")
    adj = cluster_adjacency(net, 2 * RANGE)
    print(f"(cluster adjacency pairs: "
          f"{[(int(i), int(j)) for i, j in zip(*np.nonzero(np.triu(adj))) ]})")


def des_comparison() -> None:
    """Run all three coordination modes on a real shared medium (Sec. V-G)."""
    from repro.net import MultiClusterConfig, run_multicluster_simulation

    print("\n--- event-driven comparison (3 clusters, shared medium) ---")
    print(f"{'mode':<16} {'delivered':>9} {'failed':>7} {'ratio':>7} {'collisions':>11}")
    for mode in ("uncoordinated", "token", "channels"):
        r = run_multicluster_simulation(
            MultiClusterConfig(mode=mode, n_sensors=45, n_heads=3, n_cycles=4, seed=2)
        )
        print(f"{mode:<16} {r.packets_delivered:>9} {r.packets_failed:>7} "
              f"{r.delivery_ratio:>7.3f} {r.collisions:>11}")
    print("uncoordinated clusters jam each other at the borders; either the")
    print("token or the channel coloring removes the loss entirely.")


if __name__ == "__main__":
    main()
    des_comparison()
