"""Telemetry end to end: trace a faulted run, export it, inspect it.

Runs a seeded 30-sensor cluster with a relay crash under a live telemetry
collector, then walks the whole observability pipeline:

1. the run produces a span tree (run -> cycle -> phase -> request) plus
   blacklist/repair events and per-cycle metric snapshots;
2. the trace is exported to JSONL (the repo's native format) and to a
   Chrome trace loadable in chrome://tracing or Perfetto;
3. the failed deliveries are traced back to their poll requests —
   request span -> retry events -> blacklist -> repair span;
4. the inspect CLI renders the same trace as a human-readable report.

Run:  python examples/trace_inspect.py
"""

import subprocess
import sys
import tempfile
from pathlib import Path

from repro.faults import FaultPlan, NodeCrash
from repro.net.cluster_sim import PollingSimConfig, run_polling_simulation
from repro.obs import export_chrome_trace, export_jsonl, load_jsonl
from repro.obs.inspect import failure_chains

# --- pick a victim relay from a fault-free reference run ----------------------
baseline = run_polling_simulation(PollingSimConfig(n_sensors=30, n_cycles=8, seed=3))
paths = baseline.mac.routing.routing_plan().paths
victim = min(n for p in paths.values() for n in p[1:-1] if n >= 0)
print(f"tracing a run that kills relay s{victim} at t=20.3 s\n")

# --- the traced, faulted run --------------------------------------------------
plan = FaultPlan(crashes=[NodeCrash(node=victim, at=20.3)])
result = run_polling_simulation(
    PollingSimConfig(
        n_sensors=30, n_cycles=8, seed=3, fault_plan=plan, telemetry=True
    )
)
tel = result.telemetry
print(f"collected {len(tel.spans)} spans, {len(tel.timeline)} timeline events, "
      f"{len(tel.cycle_snapshots)} cycle snapshots")
print(f"metrics: delivered={tel.metrics.counter('polling.delivered').value}, "
      f"retries={tel.metrics.counter('polling.retries').value}, "
      f"repairs={tel.metrics.counter('mac.route_repairs').value}")

# --- export -------------------------------------------------------------------
out = Path(tempfile.mkdtemp(prefix="trace_inspect_"))
jsonl = export_jsonl(tel, out / "run.jsonl")
chrome = export_chrome_trace(tel, out / "run.trace.json")
print(f"\nwrote {jsonl}")
print(f"wrote {chrome}  (open in chrome://tracing or ui.perfetto.dev)")

# --- causal chains of the failed deliveries -----------------------------------
chains = failure_chains(load_jsonl(jsonl))
print(f"\n{len(chains)} poll requests failed; the first, end to end:")
chain = chains[0]
req = chain["request"]
print(f"  request span #{req['span_id']} polled sensor s{chain['sensor']} "
      f"along {req['attrs']['path']}")
for ev in chain["events"]:
    print(f"    sim-time  {ev['time']:>7.3f}  {ev['name']}")
for ev in chain["blacklist"]:
    print(f"    sim-time  {ev['time']:>7.3f}  head blacklists "
          f"s{ev['attrs']['sensor']} after {ev['attrs']['misses']} misses")
for rep in chain["repairs"]:
    print(f"    sim-time  {rep['start']:>7.3f}  repair span #{rep['span_id']} "
          f"re-routes around {rep['attrs']['blacklisted']}")
assert chain["blacklist"] and chain["repairs"], "chain must reach the repair"

# --- the inspect CLI on the same file -----------------------------------------
print("\n--- python -m repro.obs.inspect", jsonl.name, "---")
report = subprocess.run(
    [sys.executable, "-m", "repro.obs.inspect", str(jsonl), "--top", "5"],
    capture_output=True,
    text=True,
    check=True,
)
print(report.stdout)
print("every failed delivery above traces to its originating poll request.")
