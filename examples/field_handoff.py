"""Field-level re-forming: cross-cluster handoff under mobility (DESIGN.md §13).

Three Voronoi-formed clusters share a 360 m field; every sensor drifts at
4 m/s.  The deploy-time forming decays — boundary sensors end up closer to
(and often only reachable by) a different head than the one still polling
them — and the run is repeated under the field-level handoff policies:

* ``off``        — PR 6's frozen forming: drifted sensors stay on their
  deploy-time roster until it can no longer reach them;
* ``staleness``  — the field coordinator re-runs the forming over live
  positions when enough sensors are misassigned, handing a bounded batch
  per boundary to their nearest live head (radio retune + queue transplant
  + CBR re-target; demand merged by boundary repair);
* ``placement``  — the same, plus one bounded quantization step of head
  re-placement per re-form (heads chase their cells' centroids).

Same seed, same drift — only the re-forming policy differs.

Run:  python examples/field_handoff.py
"""

from repro.net import MultiClusterConfig, run_multicluster_simulation

BASE = dict(n_cycles=10, seed=0, mobility_speed_mps=4.0)

POLICIES = {
    "off": dict(handoff="off"),
    "staleness": dict(handoff="staleness"),
    "placement": dict(handoff="staleness", handoff_head_step_m=6.0),
}

print("60 sensors / 3 heads, 4 m/s drift, 10 cycles")
print(f"{'policy':<11} {'delivered':>9} {'staleness':>9} {'coverage':>8} "
      f"{'reforms':>7} {'handoffs':>8}")
results = {}
for name, knobs in POLICIES.items():
    res = run_multicluster_simulation(MultiClusterConfig(**BASE, **knobs))
    results[name] = res
    print(f"{name:<11} {res.packets_delivered:>9} "
          f"{res.final_assignment_staleness:>9.3f} {res.field_coverage:>8.3f} "
          f"{res.field_reforms:>7} {res.field_handoffs:>8}")

coord = results["staleness"].field_coordinator
for entry in coord.reform_log:
    print(f"  t={entry['time']:>5.1f} s  re-form ({entry['reason']}): "
          f"committed {entry['committed']}, aborted {entry['aborted']}, "
          f"staleness was {entry['staleness']:.3f}")

off, on = results["off"], results["staleness"]
assert on.field_handoffs >= 1
assert on.packets_delivered > off.packets_delivered
assert on.final_assignment_staleness < off.final_assignment_staleness
assert on.field_coverage >= off.field_coverage
assert off.field_coordinator is None  # off really is off

traj_off = off.staleness_trajectory
traj_on = on.staleness_trajectory
print(f"\nstaleness trajectory off: {[round(s, 3) for s in traj_off]}")
print(f"staleness trajectory on : {[round(s, 3) for s in traj_on]}")
print("drifted sensors were handed to their nearest live head; "
      "the forming stayed fresh.")
