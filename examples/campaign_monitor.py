"""Campaign-observatory demo: streaming feed, live health CLI, forensics.

Four acts, all on a reduced fault-ablation grid (12 sensors, 4 cycles):

1. a sweep streams every trial event (launched / retry / completed /
   failed) into an append-only JSONL campaign feed while a broken-kwargs
   trial fails structurally alongside healthy neighbours;
2. the ``python -m repro.obs.campaign`` report renders progress, per-
   experiment health, and triages the failure with a copy-paste repro
   hint (trial config + cache key);
3. a checkpointed sweep is SIGKILLed mid-flight and resumed — the
   resumed run re-emits each journaled trial into the feed exactly once,
   so the merged feed reconciles duplicate-free with the trial count;
4. a doctored wall-time outlier is appended and the MAD anomaly scanner
   flags exactly that trial, again with a repro hint.

Run it::

    PYTHONPATH=src python examples/campaign_monitor.py
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.experiments.runner import SweepCheckpoint, Trial, TrialFailure, run_sweep
from repro.obs.campaign import (
    CampaignFeed,
    campaign_status,
    detect_anomalies,
    load_feed,
    reduce_trials,
    render_report,
)

SCALE = dict(n_sensors=12, n_cycles=4)
TRIALS = [Trial("fault_ablation", dict(SCALE, seed=seed)) for seed in range(4)]


def act_one_streaming_feed(campaign: Path) -> None:
    print("== act 1: sweep streams trial events into the campaign feed ==")
    bad = Trial("fault_ablation", {"bogus_option": True})
    results = run_sweep(
        [bad, *TRIALS], retries=1, backoff_base=0.05, campaign_dir=campaign
    )
    assert isinstance(results[0], TrialFailure)
    records = load_feed(campaign)
    events = sorted({r["event"] for r in records})
    print(f"feed holds {len(records)} records, event kinds: {', '.join(events)}")
    status = campaign_status(records)
    assert status.completed == len(TRIALS) and status.failed == 1
    assert status.retries >= 1


def act_two_health_report(campaign: Path) -> None:
    print("\n== act 2: the health report triages the failure with a repro hint ==")
    report = render_report(load_feed(campaign))
    print(report)
    assert "FAILED" in report and "run_trial(Trial(" in report


def act_three_kill_resume_exactly_once(campaign: Path) -> None:
    print("== act 3: SIGKILL mid-sweep, resume re-emits journaled trials once ==")
    journal = campaign / "sweep.jsonl"
    script = (
        "from repro.experiments.runner import Trial, run_sweep\n"
        f"kwargs = {[t.kwargs for t in TRIALS]!r}\n"
        "trials = [Trial('fault_ablation', k) for k in kwargs]\n"
        f"run_sweep(trials, checkpoint={str(journal)!r},\n"
        f"          campaign_dir={str(campaign)!r})\n"
    )
    proc = subprocess.Popen([sys.executable, "-c", script])
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        if len(SweepCheckpoint(journal).load()) >= 1 or proc.poll() is not None:
            break
        time.sleep(0.05)
    if proc.poll() is None:
        os.kill(proc.pid, signal.SIGKILL)
    proc.wait(timeout=30)
    survived = len(SweepCheckpoint(journal).load())
    print(f"killed the sweep with {survived}/{len(TRIALS)} trials checkpointed")

    run_sweep(TRIALS, checkpoint=journal, resume=True, campaign_dir=campaign)
    records = load_feed(campaign)
    cached = [r for r in records if r["event"] == "cached"]
    assert len(cached) == survived, (len(cached), survived)
    slots = reduce_trials(records)
    terminal = [s for s in slots.values() if s["state"] in ("completed", "cached")]
    print(
        f"resume re-emitted {len(cached)} cached record(s); merged feed "
        f"reconciles to {len(terminal)} unique done trials (duplicate-free)"
    )


def act_four_anomaly_forensics(campaign: Path) -> None:
    print("\n== act 4: the MAD scanner flags a doctored wall-time outlier ==")
    feed = CampaignFeed(campaign)
    trial = TRIALS[0]
    feed.emit_trial(
        "completed",
        "doctored-outlier",
        trial.experiment,
        trial.kwargs,
        summary={"wall_s": 120.0, "metrics": {}, "violations": 0},
    )
    findings = [
        f
        for f in detect_anomalies(load_feed(campaign), min_n=4)
        if f["metric"] == "wall_s"
    ]
    assert any(f["key"] == "doctored-outlier" for f in findings), findings
    worst = max(findings, key=lambda f: f["score"])
    print(
        f"flagged {worst['key']} (wall_s={worst['value']:.1f}, "
        f"MAD score {worst['score']:.1f})"
    )
    print(f"repro: {worst['hint']}")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        campaign = Path(tmp) / "campaign"
        act_one_streaming_feed(campaign)
        act_two_health_report(campaign)
        act_three_kill_resume_exactly_once(campaign)
        act_four_anomaly_forensics(campaign)
    print("\ncampaign feed: every trial accounted for, every anomaly traceable")


if __name__ == "__main__":
    main()
