"""Proactive survivability: in-cycle failover and cluster-head takeover.

Part 1 crashes a relay in the sleep phase of a seeded 30-sensor cluster
and runs the recovery race twice: reactive (``backup_k=0``, the head waits
out retry exhaustion, blacklisting, and the duty-cycle-boundary route
repair) versus proactive (``backup_k=1``, every sensor carries a
precomputed node-disjoint backup path, so pending requests re-issue along
it the very next slot).  Same topology, same fault, same detector — the
only difference is how long affected sensors stay dark.

Part 2 crashes an entire cluster *head* in a three-cluster network.
Neighbor heads notice the missed inter-cluster beacons, declare the head
dead, retune the orphaned sensors' radios to their own channel, adopt
them (queued data carried over), and merge the extra demand through the
standard boundary repair.

Run:  python examples/failover.py
"""

from repro.faults import FaultPlan, NodeCrash
from repro.net import MultiClusterConfig, run_multicluster_simulation
from repro.net.cluster_sim import PollingSimConfig, run_polling_simulation

# --- part 1: relay crash, reactive vs proactive recovery ----------------------
plan = FaultPlan(crashes=[NodeCrash(node=5, at=39.3)])  # sleep phase of cycle 6
runs = {}
for k in (0, 1):
    runs[k] = run_polling_simulation(
        PollingSimConfig(n_sensors=30, n_cycles=12, seed=3, fault_plan=plan, backup_k=k)
    )

print("relay s5 crashes at t=39.3 s; recovery race, k = backup paths per sensor")
print(f"{'k':>2}  {'delivered':>9}  {'failovers':>9}  {'repairs':>7}  "
      f"{'median TTR (cycles)':>19}")
for k, res in runs.items():
    avail = res.availability
    print(f"{k:>2}  {res.packets_delivered:>9}  {avail.in_cycle_failovers:>9}  "
          f"{res.mac.route_repairs:>7}  {avail.median_ttr_cycles:>19.3f}")

assert runs[1].availability.median_ttr_cycles <= 1.0
assert runs[1].availability.median_ttr_cycles < runs[0].availability.median_ttr_cycles
assert 5 in runs[1].mac.blacklisted  # failover feeds evidence mining, not hides it

# --- part 2: cluster-head crash, beacon detection, adoption -------------------
base = dict(n_sensors=60, n_heads=3, n_cycles=6, seed=2, cycle_length=6.0,
            field_m=360.0, mode="channels")
dark = run_multicluster_simulation(
    MultiClusterConfig(**base, head_crashes=((0, 8.0),))
)
saved = run_multicluster_simulation(
    MultiClusterConfig(**base, head_crashes=((0, 8.0),), head_failover=True)
)

print("\nhead H0 crashes at t=8.0 s in a 3-cluster network")
print(f"failover off : {dark.packets_delivered} packets (cluster 0 goes dark)")
print(f"failover on  : {saved.packets_delivered} packets")
for ev in saved.coordinator.adoption_events:
    print(f"  t={ev.time:.1f} s  H{ev.adopter} adopts {len(ev.sensors)} orphans "
          f"of dead H{ev.dead_head}: {list(ev.sensors)}")

assert saved.packets_delivered > dark.packets_delivered
print("\nthe network survived both a dead relay and a dead head.")
