"""Quickstart: the paper's Fig. 2 example, end to end on the public API.

Builds the three-sensor cluster from the paper's Fig. 2, routes it with the
min-max-load network-flow algorithm, polls it with the on-line Table-1
scheduler, and shows the 2-slot schedule (sequential polling would take 3).

Run:  python examples/quickstart.py
"""

from repro import HEAD, Cluster, OnlinePollingScheduler, TabulatedOracle, solve_min_max_load

# --- the cluster of Fig. 2 ---------------------------------------------------
# s0 (the paper's S1) sits next to the head and relays; s1 (S2) is behind it;
# s2 (S3) also sits next to the head.  S1 has nothing to send this cycle.
cluster = Cluster.from_edges(
    n_sensors=3,
    sensor_edges=[(0, 1)],  # s0 and s1 hear each other
    head_links=[0, 2],  # the head hears s0 and s2
    packets=[0, 1, 1],
)

# --- routing: min-max sensor load via network flow (Sec. III-A) ---------------
solution = solve_min_max_load(cluster)
plan = solution.routing_plan()
print("relaying paths (min-max load =", solution.max_load, "):")
print(plan.describe())

# --- interference: the head has probed that s1->s0 and s2->t can co-occur -----
oracle = TabulatedOracle(
    compatible_pairs=[((1, 0), (2, HEAD))],
    valid_links=[(1, 0), (0, HEAD), (2, HEAD)],
    max_group_size=2,  # the paper's M
)

# --- polling: the on-line greedy algorithm (Table 1) ---------------------------
result = OnlinePollingScheduler.poll(plan, oracle)
print(f"\npolling finished in {result.makespan} slots (sequential would need 3):")
print(result.schedule.describe())

# The schedule is provably legal: pipelined, collision-free, complete.
result.schedule.validate(list(result.pool), oracle)
print("\nschedule validated: pipelined, collision-free, all packets delivered.")

print("\nper-node timeline (T=transmit, R=receive):")
print(result.schedule.gantt())
